/* Compiled CDCL kernel behind repro.sat.solver.CKernelSolver.
 *
 * This is a line-for-line twin of the pure-Python PySolver: same literal
 * encoding (2*var positive, 2*var+1 negative), same two-watched-literal
 * propagation with dedicated binary watch lists, same first-UIP analysis,
 * same VSIDS activities and Luby restarts, same LBD-based learned-clause
 * reduction with lazy watcher cleanup.  Being a twin is a hard contract:
 * kernel-on and kernel-off runs must make the *same decisions in the same
 * order* so engine-level fingerprints match bit-for-bit.  That pins three
 * things most C ports would treat as free choices:
 *
 *  1. The branching heap replicates CPython's heapq (siftdown/siftup with
 *     the exact tuple ordering `(-activity, var)` — key first, variable
 *     index as the tie-break), including its lazy handling of stale
 *     entries.
 *  2. All activity arithmetic is IEEE-754 double precision in the same
 *     operation order as the Python code (growth by multiplying with
 *     1.0/0.95 resp. 1.0/0.999, rescales at >1e100 / >1e20), so activity
 *     ties and rescale points are bit-identical.
 *  3. Budget, deadline and restart checks sit at the same program points,
 *     so an interrupted search stops after the same conflict.
 *
 * The wrapper does literal validation / dedup / tautology dropping in
 * Python (error behaviour stays byte-identical to the reference) and hands
 * this module pre-cleaned internal literals.  Proof logging never reaches
 * this module: the factory routes proof-logging solvers to pure Python.
 *
 * NOTE: this file is a C source, outside `step lint` scope (the analyzer
 * covers Python only; see docs/analysis.md).  Determinism is enforced by
 * tests/test_kernel_differential.py instead.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define VAL_TRUE 1
#define VAL_FALSE 0
#define VAL_UNASSIGNED (-1)

#define GLUE_LBD 2
#define REDUCE_BASE 4000

/* ------------------------------------------------------------- clauses */

typedef struct Clause {
    int32_t size;
    uint8_t learned;
    uint8_t deleted; /* reduced away; watcher lists shed it lazily */
    uint8_t locked;  /* scratch flag used by reduce_db */
    int32_t lbd;
    int32_t refs; /* live watcher-list references (long clauses only) */
    double activity;
    int32_t lits[1]; /* flexible array (C89-compatible spelling) */
} Clause;

static Clause *
clause_new(const int32_t *lits, int32_t size, int learned)
{
    Clause *c = (Clause *)malloc(sizeof(Clause) + (size_t)(size > 0 ? size - 1 : 0) * sizeof(int32_t));
    if (c == NULL)
        return NULL;
    c->size = size;
    c->learned = (uint8_t)learned;
    c->deleted = 0;
    c->locked = 0;
    c->lbd = 0;
    c->refs = 0;
    c->activity = 0.0;
    if (size > 0)
        memcpy(c->lits, lits, (size_t)size * sizeof(int32_t));
    return c;
}

/* ------------------------------------------------------------- vectors */

typedef struct {
    Clause **data;
    Py_ssize_t size, cap;
} ClauseVec;

typedef struct {
    int32_t other;
    Clause *clause;
} BinWatch;

typedef struct {
    BinWatch *data;
    Py_ssize_t size, cap;
} BinVec;

typedef struct {
    int32_t *data;
    Py_ssize_t size, cap;
} IntVec;

typedef struct {
    double key;
    int32_t var;
} HeapItem;

static int
clausevec_push(ClauseVec *v, Clause *c)
{
    if (v->size == v->cap) {
        Py_ssize_t cap = v->cap ? v->cap * 2 : 8;
        Clause **data = (Clause **)realloc(v->data, (size_t)cap * sizeof(Clause *));
        if (data == NULL)
            return -1;
        v->data = data;
        v->cap = cap;
    }
    v->data[v->size++] = c;
    return 0;
}

static int
binvec_push(BinVec *v, int32_t other, Clause *c)
{
    if (v->size == v->cap) {
        Py_ssize_t cap = v->cap ? v->cap * 2 : 4;
        BinWatch *data = (BinWatch *)realloc(v->data, (size_t)cap * sizeof(BinWatch));
        if (data == NULL)
            return -1;
        v->data = data;
        v->cap = cap;
    }
    v->data[v->size].other = other;
    v->data[v->size].clause = c;
    v->size++;
    return 0;
}

static int
intvec_push(IntVec *v, int32_t value)
{
    if (v->size == v->cap) {
        Py_ssize_t cap = v->cap ? v->cap * 2 : 16;
        int32_t *data = (int32_t *)realloc(v->data, (size_t)cap * sizeof(int32_t));
        if (data == NULL)
            return -1;
        v->data = data;
        v->cap = cap;
    }
    v->data[v->size++] = value;
    return 0;
}

/* ------------------------------------------------------------ the type */

typedef struct {
    PyObject_HEAD
    int32_t num_vars;
    int32_t cap_vars; /* per-var arrays are sized cap_vars + 1 */
    int8_t *assigns;  /* indexed by var; VAL_* */
    int32_t *level;
    Clause **reason;
    int8_t *phase;
    int8_t *seen;
    double *activity;
    int32_t *lbd_mark;   /* per-level stamp used to count distinct levels */
    int32_t *visit_mark; /* per-var stamp used by analyze_final */
    int8_t *assume_mark; /* per-ilit flag used by analyze_final */
    int32_t stamp;

    ClauseVec *watches; /* per-ilit long-clause watcher lists */
    BinVec *bin_watches;

    int32_t *trail;
    Py_ssize_t trail_size, trail_cap;
    int32_t *trail_lim;
    Py_ssize_t trail_lim_size, trail_lim_cap;
    Py_ssize_t qhead;

    HeapItem *heap;
    Py_ssize_t heap_size, heap_cap;

    double var_inc, var_inc_growth;
    double cla_inc, cla_inc_growth;

    ClauseVec clauses; /* ownership list of original clauses */
    ClauseVec learnts;

    IntVec learned_buf; /* scratch for analyze */

    int ok;
    int64_t reduce_base;
    int64_t conflicts, decisions, propagations;
} CSolver;

/* --------------------------------------------------- small inline helpers */

static inline int
lit_value(CSolver *s, int32_t ilit)
{
    int8_t a = s->assigns[ilit >> 1];
    if (a < 0)
        return VAL_UNASSIGNED;
    return a ^ (ilit & 1);
}

static inline Py_ssize_t
decision_level(CSolver *s)
{
    return s->trail_lim_size;
}

static int
trail_push(CSolver *s, int32_t ilit)
{
    if (s->trail_size == s->trail_cap) {
        Py_ssize_t cap = s->trail_cap ? s->trail_cap * 2 : 64;
        int32_t *data = (int32_t *)realloc(s->trail, (size_t)cap * sizeof(int32_t));
        if (data == NULL)
            return -1;
        s->trail = data;
        s->trail_cap = cap;
    }
    s->trail[s->trail_size++] = ilit;
    return 0;
}

static int
trail_lim_push(CSolver *s, int32_t boundary)
{
    if (s->trail_lim_size == s->trail_lim_cap) {
        Py_ssize_t cap = s->trail_lim_cap ? s->trail_lim_cap * 2 : 16;
        int32_t *data = (int32_t *)realloc(s->trail_lim, (size_t)cap * sizeof(int32_t));
        if (data == NULL)
            return -1;
        s->trail_lim = data;
        s->trail_lim_cap = cap;
    }
    s->trail_lim[s->trail_lim_size++] = boundary;
    return 0;
}

/* ----------------------------------------------------------- CPython heapq
 *
 * An exact transcription of CPython's heapq._siftdown/_siftup over
 * (key, var) pairs compared like Python tuples: key first, var breaks
 * ties.  Stale entries (pushed with an old activity) keep their pushed
 * key, exactly like the Python heap of immutable tuples.
 */

static inline int
heap_lt(HeapItem a, HeapItem b)
{
    if (a.key < b.key)
        return 1;
    if (a.key == b.key)
        return a.var < b.var;
    return 0;
}

static int
heap_push(CSolver *s, double key, int32_t var)
{
    if (s->heap_size == s->heap_cap) {
        Py_ssize_t cap = s->heap_cap ? s->heap_cap * 2 : 64;
        HeapItem *data = (HeapItem *)realloc(s->heap, (size_t)cap * sizeof(HeapItem));
        if (data == NULL)
            return -1;
        s->heap = data;
        s->heap_cap = cap;
    }
    /* heapq.heappush: append + _siftdown(heap, 0, len-1) */
    Py_ssize_t pos = s->heap_size++;
    HeapItem newitem;
    newitem.key = key;
    newitem.var = var;
    while (pos > 0) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        HeapItem parent = s->heap[parentpos];
        if (heap_lt(newitem, parent)) {
            s->heap[pos] = parent;
            pos = parentpos;
            continue;
        }
        break;
    }
    s->heap[pos] = newitem;
    return 0;
}

static HeapItem
heap_pop(CSolver *s)
{
    /* heapq.heappop: pop last; if non-empty, move to root and _siftup. */
    HeapItem lastelt = s->heap[--s->heap_size];
    if (s->heap_size == 0)
        return lastelt;
    HeapItem returnitem = s->heap[0];
    Py_ssize_t endpos = s->heap_size;
    Py_ssize_t pos = 0;
    HeapItem newitem = lastelt;
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos && !heap_lt(s->heap[childpos], s->heap[rightpos]))
            childpos = rightpos;
        s->heap[pos] = s->heap[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    s->heap[pos] = newitem;
    /* _siftdown(heap, startpos=0, pos) */
    while (pos > 0) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        HeapItem parent = s->heap[parentpos];
        if (heap_lt(newitem, parent)) {
            s->heap[pos] = parent;
            pos = parentpos;
            continue;
        }
        break;
    }
    s->heap[pos] = newitem;
    return returnitem;
}

/* -------------------------------------------------------------- growth */

static int
cs_ensure_vars(CSolver *s, int32_t want)
{
    if (want <= s->num_vars)
        return 0;
    if (want > s->cap_vars) {
        int32_t cap = s->cap_vars ? s->cap_vars : 16;
        while (cap < want)
            cap *= 2;
        size_t nvars = (size_t)cap + 1;
        size_t nlits = 2 * nvars;
#define GROW(field, type, count)                                            \
    do {                                                                    \
        type *p = (type *)realloc(s->field, (count) * sizeof(type));        \
        if (p == NULL)                                                      \
            return -1;                                                      \
        s->field = p;                                                       \
    } while (0)
        GROW(assigns, int8_t, nvars);
        GROW(level, int32_t, nvars);
        GROW(reason, Clause *, nvars);
        GROW(phase, int8_t, nvars);
        GROW(seen, int8_t, nvars);
        GROW(activity, double, nvars);
        GROW(lbd_mark, int32_t, nvars);
        GROW(visit_mark, int32_t, nvars);
        GROW(assume_mark, int8_t, nlits);
        GROW(watches, ClauseVec, nlits);
        GROW(bin_watches, BinVec, nlits);
#undef GROW
        /* Zero the newly exposed range. */
        size_t old_vars = (size_t)s->cap_vars + (s->cap_vars ? 1 : 0);
        size_t old_lits = 2 * old_vars;
        memset(s->assigns + old_vars, 0, (nvars - old_vars) * sizeof(int8_t));
        memset(s->level + old_vars, 0, (nvars - old_vars) * sizeof(int32_t));
        memset(s->reason + old_vars, 0, (nvars - old_vars) * sizeof(Clause *));
        memset(s->phase + old_vars, 0, (nvars - old_vars) * sizeof(int8_t));
        memset(s->seen + old_vars, 0, (nvars - old_vars) * sizeof(int8_t));
        memset(s->activity + old_vars, 0, (nvars - old_vars) * sizeof(double));
        memset(s->lbd_mark + old_vars, 0, (nvars - old_vars) * sizeof(int32_t));
        memset(s->visit_mark + old_vars, 0, (nvars - old_vars) * sizeof(int32_t));
        memset(s->assume_mark + old_lits, 0, (nlits - old_lits) * sizeof(int8_t));
        memset(s->watches + old_lits, 0, (nlits - old_lits) * sizeof(ClauseVec));
        memset(s->bin_watches + old_lits, 0, (nlits - old_lits) * sizeof(BinVec));
        s->cap_vars = cap;
    }
    for (int32_t var = s->num_vars + 1; var <= want; var++) {
        s->assigns[var] = VAL_UNASSIGNED;
        s->level[var] = 0;
        s->reason[var] = NULL;
        s->phase[var] = 0;
        s->seen[var] = 0;
        s->activity[var] = 0.0;
        if (heap_push(s, 0.0, var) < 0)
            return -1;
    }
    s->num_vars = want;
    return 0;
}

/* --------------------------------------------------------------- search */

static int
cs_enqueue(CSolver *s, int32_t ilit, Clause *reason)
{
    /* Mirrors PySolver._enqueue: a no-op when the literal is assigned. */
    if (s->assigns[ilit >> 1] >= 0)
        return 0;
    int32_t var = ilit >> 1;
    s->assigns[var] = (int8_t)(1 ^ (ilit & 1));
    s->level[var] = (int32_t)decision_level(s);
    s->reason[var] = reason;
    s->phase[var] = (int8_t)(!(ilit & 1));
    return trail_push(s, ilit);
}

static void
cs_cancel_until(CSolver *s, Py_ssize_t level)
{
    if (s->trail_lim_size <= level)
        return;
    Py_ssize_t boundary = s->trail_lim[level];
    for (Py_ssize_t t = s->trail_size - 1; t >= boundary; t--) {
        int32_t var = s->trail[t] >> 1;
        s->assigns[var] = VAL_UNASSIGNED;
        s->reason[var] = NULL;
        heap_push(s, -s->activity[var], var);
    }
    s->trail_size = boundary;
    s->trail_lim_size = level;
    s->qhead = s->trail_size;
}

static int
cs_attach(CSolver *s, Clause *c)
{
    int32_t *lits = c->lits;
    if (c->size == 2) {
        if (binvec_push(&s->bin_watches[lits[0] ^ 1], lits[1], c) < 0)
            return -1;
        return binvec_push(&s->bin_watches[lits[1] ^ 1], lits[0], c);
    }
    if (clausevec_push(&s->watches[lits[0] ^ 1], c) < 0)
        return -1;
    if (clausevec_push(&s->watches[lits[1] ^ 1], c) < 0)
        return -1;
    c->refs = 2;
    return 0;
}

static Clause *
cs_propagate(CSolver *s)
{
    Py_ssize_t qhead = s->qhead;
    if (qhead == s->trail_size)
        return NULL;
    int32_t level = (int32_t)s->trail_lim_size;
    int64_t propagated = 0;
    Clause *conflict = NULL;
    while (conflict == NULL && qhead < s->trail_size) {
        int32_t ilit = s->trail[qhead++];

        /* Binary clauses: the other literal is unit unless already true. */
        BinVec *bw = &s->bin_watches[ilit];
        for (Py_ssize_t bi = 0; bi < bw->size; bi++) {
            int32_t other = bw->data[bi].other;
            int8_t oval = s->assigns[other >> 1];
            if (oval < 0) {
                int32_t var = other >> 1;
                s->assigns[var] = (int8_t)(1 ^ (other & 1));
                s->level[var] = level;
                s->reason[var] = bw->data[bi].clause;
                s->phase[var] = (int8_t)(!(other & 1));
                if (trail_push(s, other) < 0) {
                    PyErr_NoMemory();
                    return NULL;
                }
                propagated++;
            }
            else if (oval == (int8_t)(other & 1)) {
                conflict = bw->data[bi].clause;
                qhead = s->trail_size;
                break;
            }
        }
        if (conflict != NULL)
            break;

        ClauseVec *wl = &s->watches[ilit];
        int32_t false_lit = ilit ^ 1;
        Py_ssize_t i = 0, j = 0;
        Py_ssize_t count = wl->size;
        while (i < count) {
            Clause *c = wl->data[i++];
            if (c->deleted) {
                /* Lazy watcher cleanup: reduced-away clauses are dropped
                 * here instead of by an eager sweep at reduction time. */
                if (--c->refs == 0)
                    free(c);
                continue;
            }
            int32_t *lits = c->lits;
            if (lits[0] == false_lit) {
                lits[0] = lits[1];
                lits[1] = false_lit;
            }
            int32_t first = lits[0];
            int8_t first_val = s->assigns[first >> 1];
            if ((int)first_val == (1 ^ (first & 1))) {
                wl->data[j++] = c;
                continue;
            }
            int32_t size = c->size;
            int moved = 0;
            for (int32_t k = 2; k < size; k++) {
                int32_t other = lits[k];
                if ((int)s->assigns[other >> 1] != (other & 1)) {
                    /* Not false: move the watch to this literal. */
                    lits[1] = other;
                    lits[k] = false_lit;
                    if (clausevec_push(&s->watches[other ^ 1], c) < 0) {
                        PyErr_NoMemory();
                        return NULL;
                    }
                    moved = 1;
                    break;
                }
            }
            if (moved)
                continue;
            wl->data[j++] = c;
            if ((int)first_val == (first & 1)) {
                /* Every literal false: conflict. */
                while (i < count)
                    wl->data[j++] = wl->data[i++];
                conflict = c;
                qhead = s->trail_size;
                break;
            }
            int32_t var = first >> 1;
            s->assigns[var] = (int8_t)(1 ^ (first & 1));
            s->level[var] = level;
            s->reason[var] = c;
            s->phase[var] = (int8_t)(!(first & 1));
            if (trail_push(s, first) < 0) {
                PyErr_NoMemory();
                return NULL;
            }
            propagated++;
        }
        wl->size = j;
    }
    s->qhead = qhead;
    s->propagations += propagated;
    return conflict;
}

static void
cs_bump_var(CSolver *s, int32_t var)
{
    s->activity[var] += s->var_inc;
    if (s->activity[var] > 1e100) {
        for (int32_t v = 1; v <= s->num_vars; v++)
            s->activity[v] *= 1e-100;
        s->var_inc *= 1e-100;
    }
    /* Assigned variables are pushed by cancel_until when they become
     * selectable again; pushing here would only add stale entries. */
    if (s->assigns[var] < 0)
        heap_push(s, -s->activity[var], var);
}

static void
cs_bump_clause(CSolver *s, Clause *c)
{
    c->activity += s->cla_inc;
    if (c->activity > 1e20) {
        for (Py_ssize_t i = 0; i < s->learnts.size; i++)
            s->learnts.data[i]->activity *= 1e-20;
        s->cla_inc *= 1e-20;
    }
}

static int
cs_analyze(CSolver *s, Clause *conflict, int32_t *out_bt, int32_t *out_lbd)
{
    /* First-UIP conflict analysis; the learned clause lands in
     * s->learned_buf with the asserting literal first.  The LBD is counted
     * here, before backtracking, while the literals' levels are live. */
    IntVec *learned = &s->learned_buf;
    learned->size = 0;
    if (intvec_push(learned, 0) < 0)
        return -1;
    int32_t counter = 0;
    int32_t resolved_lit = -1; /* internal literals are >= 2 */
    Clause *clause = conflict;
    Py_ssize_t index = s->trail_size - 1;
    int32_t dlevel = (int32_t)s->trail_lim_size;

    for (;;) {
        if (clause->learned)
            cs_bump_clause(s, clause);
        int32_t csize = clause->size;
        for (int32_t k = 0; k < csize; k++) {
            int32_t lit = clause->lits[k];
            if (lit == resolved_lit)
                continue;
            int32_t var = lit >> 1;
            if (s->seen[var])
                continue;
            int8_t a = s->assigns[var];
            if (a >= 0 && (a ^ (lit & 1)) == VAL_TRUE)
                continue;
            if (s->level[var] == 0)
                continue;
            s->seen[var] = 1;
            cs_bump_var(s, var);
            if (s->level[var] >= dlevel)
                counter++;
            else if (intvec_push(learned, lit) < 0)
                return -1;
        }
        while (!s->seen[s->trail[index] >> 1])
            index--;
        resolved_lit = s->trail[index];
        index--;
        int32_t var = resolved_lit >> 1;
        s->seen[var] = 0;
        counter--;
        if (counter == 0) {
            learned->data[0] = resolved_lit ^ 1;
            break;
        }
        clause = s->reason[var];
    }

    for (Py_ssize_t k = 1; k < learned->size; k++)
        s->seen[learned->data[k] >> 1] = 0;

    if (learned->size == 1) {
        *out_bt = 0;
    }
    else {
        Py_ssize_t max_i = 1;
        for (Py_ssize_t i = 2; i < learned->size; i++) {
            if (s->level[learned->data[i] >> 1] > s->level[learned->data[max_i] >> 1])
                max_i = i;
        }
        int32_t tmp = learned->data[1];
        learned->data[1] = learned->data[max_i];
        learned->data[max_i] = tmp;
        *out_bt = s->level[learned->data[1] >> 1];
    }

    s->stamp++;
    int32_t lbd = 0;
    for (Py_ssize_t k = 0; k < learned->size; k++) {
        int32_t lvl = s->level[learned->data[k] >> 1];
        if (s->lbd_mark[lvl] != s->stamp) {
            s->lbd_mark[lvl] = s->stamp;
            lbd++;
        }
    }
    *out_lbd = lbd;
    return 0;
}

static int
cs_record_learned(CSolver *s, int32_t lbd)
{
    IntVec *learned = &s->learned_buf;
    Clause *c = clause_new(learned->data, (int32_t)learned->size, 1);
    if (c == NULL)
        return -1;
    c->lbd = lbd;
    if (learned->size == 1) {
        if (clausevec_push(&s->learnts, c) < 0)
            return -1;
        return cs_enqueue(s, learned->data[0], c);
    }
    if (cs_attach(s, c) < 0)
        return -1;
    if (clausevec_push(&s->learnts, c) < 0)
        return -1;
    cs_bump_clause(s, c);
    return cs_enqueue(s, learned->data[0], c);
}

/* Stable worst-first order for reduce_db: higher LBD first, then lower
 * activity, ties keep insertion order — the same ordering as the Python
 * list.sort(key=lambda c: (-c.lbd, c.activity)).  Bottom-up mergesort with
 * an auxiliary buffer (qsort is not stable). */
static inline int
reduce_before(const Clause *a, const Clause *b)
{
    if (a->lbd != b->lbd)
        return a->lbd > b->lbd;
    return a->activity < b->activity;
}

static int
stable_sort_clauses(Clause **data, Py_ssize_t n)
{
    if (n < 2)
        return 0;
    Clause **aux = (Clause **)malloc((size_t)n * sizeof(Clause *));
    if (aux == NULL)
        return -1;
    Clause **src = data, **dst = aux;
    for (Py_ssize_t width = 1; width < n; width *= 2) {
        for (Py_ssize_t lo = 0; lo < n; lo += 2 * width) {
            Py_ssize_t mid = lo + width < n ? lo + width : n;
            Py_ssize_t hi = lo + 2 * width < n ? lo + 2 * width : n;
            Py_ssize_t a = lo, b = mid, out = lo;
            while (a < mid && b < hi) {
                /* take left unless right is strictly before it (stable) */
                if (reduce_before(src[b], src[a]))
                    dst[out++] = src[b++];
                else
                    dst[out++] = src[a++];
            }
            while (a < mid)
                dst[out++] = src[a++];
            while (b < hi)
                dst[out++] = src[b++];
        }
        Clause **tmp = src;
        src = dst;
        dst = tmp;
    }
    if (src != data)
        memcpy(data, src, (size_t)n * sizeof(Clause *));
    free(aux);
    return 0;
}

static int
cs_reduce_db(CSolver *s)
{
    for (int32_t var = 1; var <= s->num_vars; var++) {
        Clause *r = s->reason[var];
        if (r != NULL && r->learned)
            r->locked = 1;
    }
    if (stable_sort_clauses(s->learnts.data, s->learnts.size) < 0)
        return -1;
    Py_ssize_t half = s->learnts.size / 2;
    Py_ssize_t j = 0;
    for (Py_ssize_t i = 0; i < s->learnts.size; i++) {
        Clause *c = s->learnts.data[i];
        if (i < half && c->lbd > GLUE_LBD && !c->locked && c->size > 2)
            c->deleted = 1; /* reaped lazily by cs_propagate */
        else
            s->learnts.data[j++] = c;
    }
    s->learnts.size = j;
    for (int32_t var = 1; var <= s->num_vars; var++) {
        Clause *r = s->reason[var];
        if (r != NULL && r->learned)
            r->locked = 0;
    }
    return 0;
}

static int32_t
cs_pick_branch(CSolver *s)
{
    while (s->heap_size > 0) {
        HeapItem it = heap_pop(s);
        if (s->assigns[it.var] < 0)
            return 2 * it.var + (s->phase[it.var] ? 0 : 1);
    }
    for (int32_t var = 1; var <= s->num_vars; var++) {
        if (s->assigns[var] < 0)
            return 2 * var + (s->phase[var] ? 0 : 1);
    }
    return -1;
}

static int64_t
luby(int64_t index)
{
    int64_t size = 1;
    int64_t level = 0;
    while (size < index + 1) {
        level += 1;
        size = 2 * size + 1;
    }
    while (size - 1 != index) {
        size = (size - 1) / 2;
        level -= 1;
        index %= size;
    }
    return (int64_t)1 << level;
}

static int
cs_analyze_final(CSolver *s, int32_t failed, const int32_t *assumptions,
                 Py_ssize_t n_assumptions, IntVec *core)
{
    /* Failed-assumption core: external literals, pre-dedup (the Python
     * wrapper applies the order-preserving dict.fromkeys dedup). */
    for (Py_ssize_t k = 0; k < n_assumptions; k++)
        s->assume_mark[assumptions[k]] = 1;
    int rc = 0;
    IntVec stack = {NULL, 0, 0};
    int32_t var = failed >> 1;
    int32_t ext = (failed & 1) ? -var : var;
    if (intvec_push(core, ext) < 0 || intvec_push(&stack, failed ^ 1) < 0)
        rc = -1;
    s->stamp++;
    while (rc == 0 && stack.size > 0) {
        int32_t lit = stack.data[--stack.size];
        var = lit >> 1;
        if (s->visit_mark[var] == s->stamp)
            continue;
        s->visit_mark[var] = s->stamp;
        if (s->level[var] == 0)
            continue;
        Clause *reason = s->reason[var];
        int8_t a = s->assigns[var];
        int32_t true_lit = (a >= 0 && (a ^ (lit & 1)) == VAL_TRUE) ? lit : (lit ^ 1);
        if (reason == NULL) {
            if (s->assume_mark[true_lit]) {
                var = true_lit >> 1;
                ext = (true_lit & 1) ? -var : var;
                if (intvec_push(core, ext) < 0)
                    rc = -1;
            }
            continue;
        }
        for (int32_t k = 0; k < reason->size; k++) {
            int32_t other = reason->lits[k];
            if ((other >> 1) != (lit >> 1)) {
                if (intvec_push(&stack, other) < 0) {
                    rc = -1;
                    break;
                }
            }
        }
    }
    free(stack.data);
    for (Py_ssize_t k = 0; k < n_assumptions; k++)
        s->assume_mark[assumptions[k]] = 0;
    return rc;
}

/* Deadline handling: calls the Python Deadline.expired property at the
 * same program points as the pure solver.  Returns 1 expired, 0 live,
 * -1 on a raised exception. */
static int
check_deadline(PyObject *deadline)
{
    if (deadline == Py_None)
        return 0;
    PyObject *flag = PyObject_GetAttrString(deadline, "expired");
    if (flag == NULL)
        return -1;
    int truth = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    return truth; /* PyObject_IsTrue already returns -1 on error */
}

/* ------------------------------------------------------- Python methods */

static PyObject *
solver_ensure_vars(CSolver *s, PyObject *arg)
{
    long want = PyLong_AsLong(arg);
    if (want < 0 && PyErr_Occurred())
        return NULL;
    if (cs_ensure_vars(s, (int32_t)want) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

static PyObject *
solver_ok(CSolver *s, PyObject *Py_UNUSED(ignored))
{
    return PyBool_FromLong(s->ok);
}

static PyObject *
solver_set_reduce_base(CSolver *s, PyObject *arg)
{
    long base = PyLong_AsLong(arg);
    if (base < 0 && PyErr_Occurred())
        return NULL;
    s->reduce_base = base;
    Py_RETURN_NONE;
}

static PyObject *
solver_get_reduce_base(CSolver *s, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(s->reduce_base);
}

static PyObject *
solver_add_clause(CSolver *s, PyObject *arg)
{
    /* The wrapper hands us a deduped, tautology-free list of internal
     * literals; this mirrors the tail of PySolver.add_clause (after cid
     * assignment) for the non-proof path.  Returns the number of
     * assignments the level-0 propagation enqueued. */
    if (!PyList_Check(arg)) {
        PyErr_SetString(PyExc_TypeError, "add_clause expects a list of internal literals");
        return NULL;
    }
    int64_t props_before = s->propagations;
    Py_ssize_t n = PyList_GET_SIZE(arg);
    int32_t max_var = 0;
    int32_t stack_lits[64];
    int32_t *ilits = stack_lits;
    if (n > 64) {
        ilits = (int32_t *)malloc((size_t)n * sizeof(int32_t));
        if (ilits == NULL)
            return PyErr_NoMemory();
    }
    for (Py_ssize_t k = 0; k < n; k++) {
        long v = PyLong_AsLong(PyList_GET_ITEM(arg, k));
        if (v == -1 && PyErr_Occurred()) {
            if (ilits != stack_lits)
                free(ilits);
            return NULL;
        }
        ilits[k] = (int32_t)v;
        if ((int32_t)(v >> 1) > max_var)
            max_var = (int32_t)(v >> 1);
    }
    if (cs_ensure_vars(s, max_var) < 0)
        goto oom;
    if (!s->ok)
        goto done;

    /* Satisfied at level 0: never an antecedent, drop it. */
    for (Py_ssize_t k = 0; k < n; k++) {
        if (lit_value(s, ilits[k]) == VAL_TRUE)
            goto done;
    }
    /* Simplify against the level-0 assignment.  At add time every
     * assignment is level 0, so this removes exactly the false literals
     * and the remainder is entirely unassigned. */
    {
        Py_ssize_t w = 0;
        for (Py_ssize_t k = 0; k < n; k++) {
            if (lit_value(s, ilits[k]) != VAL_FALSE)
                ilits[w++] = ilits[k];
        }
        n = w;
    }
    if (n == 0) {
        s->ok = 0;
        goto done;
    }
    {
        Clause *record = clause_new(ilits, (int32_t)n, 0);
        if (record == NULL)
            goto oom;
        if (clausevec_push(&s->clauses, record) < 0)
            goto oom;
        if (n == 1) {
            if (cs_enqueue(s, record->lits[0], record) < 0)
                goto oom;
            Clause *conflict = cs_propagate(s);
            if (PyErr_Occurred())
                goto fail;
            if (conflict != NULL)
                s->ok = 0;
            goto done;
        }
        if (cs_attach(s, record) < 0)
            goto oom;
    }
done:
    if (ilits != stack_lits)
        free(ilits);
    return PyLong_FromLongLong(s->propagations - props_before);
oom:
    PyErr_NoMemory();
fail:
    if (ilits != stack_lits)
        free(ilits);
    return NULL;
}

static PyObject *
build_model(CSolver *s)
{
    PyObject *model = PyDict_New();
    if (model == NULL)
        return NULL;
    for (int32_t var = 1; var <= s->num_vars; var++) {
        PyObject *key = PyLong_FromLong(var);
        PyObject *val = PyBool_FromLong(s->assigns[var] == VAL_TRUE);
        if (key == NULL || val == NULL || PyDict_SetItem(model, key, val) < 0) {
            Py_XDECREF(key);
            Py_XDECREF(val);
            Py_DECREF(model);
            return NULL;
        }
        Py_DECREF(key);
        Py_DECREF(val);
    }
    return model;
}

static PyObject *
build_result(CSolver *s, int status, PyObject *model, PyObject *core)
{
    if (model == NULL)
        model = Py_NewRef(Py_None);
    if (core == NULL)
        core = Py_NewRef(Py_None);
    PyObject *result = Py_BuildValue(
        "iOOLLL", status, model, core, (long long)s->conflicts,
        (long long)s->decisions, (long long)s->propagations);
    Py_DECREF(model);
    Py_DECREF(core);
    return result;
}

static PyObject *
solver_solve(CSolver *s, PyObject *args)
{
    PyObject *assumptions_obj;
    long long budget;
    PyObject *deadline;
    if (!PyArg_ParseTuple(args, "OLO", &assumptions_obj, &budget, &deadline))
        return NULL;
    if (!PyList_Check(assumptions_obj)) {
        PyErr_SetString(PyExc_TypeError, "solve expects a list of internal assumption literals");
        return NULL;
    }
    if (!s->ok)
        return build_result(s, 0, NULL, NULL);

    Py_ssize_t n_assumptions = PyList_GET_SIZE(assumptions_obj);
    int32_t *assumptions = NULL;
    if (n_assumptions > 0) {
        assumptions = (int32_t *)malloc((size_t)n_assumptions * sizeof(int32_t));
        if (assumptions == NULL)
            return PyErr_NoMemory();
        for (Py_ssize_t k = 0; k < n_assumptions; k++) {
            long v = PyLong_AsLong(PyList_GET_ITEM(assumptions_obj, k));
            if (v == -1 && PyErr_Occurred()) {
                free(assumptions);
                return NULL;
            }
            assumptions[k] = (int32_t)v;
        }
    }

    cs_cancel_until(s, 0);
    int64_t conflicts_at_start = s->conflicts;
    int64_t restart_index = 0;
    int64_t restart_budget = 64 * luby(restart_index);
    int64_t conflicts_this_restart = 0;
    int status = -2; /* sentinel: still searching */
    PyObject *model = NULL;
    PyObject *core_list = NULL;

    while (status == -2) {
        Clause *conflict = cs_propagate(s);
        if (PyErr_Occurred())
            goto fail;
        if (conflict != NULL) {
            s->conflicts++;
            conflicts_this_restart++;
            if (decision_level(s) == 0) {
                s->ok = 0;
                status = 0;
                break;
            }
            int32_t backtrack_level, lbd;
            if (cs_analyze(s, conflict, &backtrack_level, &lbd) < 0)
                goto oom;
            cs_cancel_until(s, backtrack_level);
            if (cs_record_learned(s, lbd) < 0)
                goto oom;
            s->var_inc *= s->var_inc_growth;
            s->cla_inc *= s->cla_inc_growth;
            if (budget >= 0 && s->conflicts - conflicts_at_start >= budget) {
                cs_cancel_until(s, 0);
                status = -1;
                break;
            }
            int expired = check_deadline(deadline);
            if (expired < 0)
                goto fail;
            if (expired) {
                cs_cancel_until(s, 0);
                status = -1;
                break;
            }
            if (conflicts_this_restart >= restart_budget) {
                restart_index++;
                restart_budget = 64 * luby(restart_index);
                conflicts_this_restart = 0;
                cs_cancel_until(s, 0);
            }
            continue;
        }

        {
            int expired = check_deadline(deadline);
            if (expired < 0)
                goto fail;
            if (expired) {
                cs_cancel_until(s, 0);
                status = -1;
                break;
            }
        }

        if (decision_level(s) < n_assumptions) {
            /* Place the next assumption as a pseudo-decision. */
            int32_t ilit = assumptions[decision_level(s)];
            int value = lit_value(s, ilit);
            if (value == VAL_TRUE) {
                if (trail_lim_push(s, (int32_t)s->trail_size) < 0)
                    goto oom;
                continue;
            }
            if (value == VAL_FALSE) {
                IntVec core = {NULL, 0, 0};
                if (cs_analyze_final(s, ilit, assumptions, n_assumptions, &core) < 0) {
                    free(core.data);
                    goto oom;
                }
                core_list = PyList_New(core.size);
                if (core_list == NULL) {
                    free(core.data);
                    goto fail;
                }
                for (Py_ssize_t k = 0; k < core.size; k++) {
                    PyObject *item = PyLong_FromLong(core.data[k]);
                    if (item == NULL) {
                        free(core.data);
                        goto fail;
                    }
                    PyList_SET_ITEM(core_list, k, item);
                }
                free(core.data);
                cs_cancel_until(s, 0);
                status = 0;
                break;
            }
            if (trail_lim_push(s, (int32_t)s->trail_size) < 0)
                goto oom;
            if (cs_enqueue(s, ilit, NULL) < 0)
                goto oom;
            continue;
        }

        if ((int64_t)s->learnts.size > s->reduce_base) {
            if (cs_reduce_db(s) < 0)
                goto oom;
        }

        int32_t ilit = cs_pick_branch(s);
        if (ilit < 0) {
            model = build_model(s);
            if (model == NULL)
                goto fail;
            cs_cancel_until(s, 0);
            status = 1;
            break;
        }
        s->decisions++;
        if (trail_lim_push(s, (int32_t)s->trail_size) < 0)
            goto oom;
        if (cs_enqueue(s, ilit, NULL) < 0)
            goto oom;
    }

    free(assumptions);
    {
        PyObject *result = build_result(s, status, model, core_list);
        return result;
    }

oom:
    PyErr_NoMemory();
fail:
    free(assumptions);
    Py_XDECREF(model);
    Py_XDECREF(core_list);
    cs_cancel_until(s, 0);
    return NULL;
}

/* ------------------------------------------------------------ lifecycle */

static PyObject *
solver_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CSolver *s = (CSolver *)type->tp_alloc(type, 0);
    if (s == NULL)
        return NULL;
    s->num_vars = 0;
    s->cap_vars = 0;
    s->assigns = NULL;
    s->level = NULL;
    s->reason = NULL;
    s->phase = NULL;
    s->seen = NULL;
    s->activity = NULL;
    s->lbd_mark = NULL;
    s->visit_mark = NULL;
    s->assume_mark = NULL;
    s->stamp = 0;
    s->watches = NULL;
    s->bin_watches = NULL;
    s->trail = NULL;
    s->trail_size = s->trail_cap = 0;
    s->trail_lim = NULL;
    s->trail_lim_size = s->trail_lim_cap = 0;
    s->qhead = 0;
    s->heap = NULL;
    s->heap_size = s->heap_cap = 0;
    s->var_inc = 1.0;
    s->var_inc_growth = 1.0 / 0.95;
    s->cla_inc = 1.0;
    s->cla_inc_growth = 1.0 / 0.999;
    memset(&s->clauses, 0, sizeof(ClauseVec));
    memset(&s->learnts, 0, sizeof(ClauseVec));
    memset(&s->learned_buf, 0, sizeof(IntVec));
    s->ok = 1;
    s->reduce_base = REDUCE_BASE;
    s->conflicts = s->decisions = s->propagations = 0;
    return (PyObject *)s;
}

static void
solver_dealloc(CSolver *s)
{
    /* Deleted-but-still-watched clauses live only in the watcher lists;
     * free each on its last remaining reference. */
    if (s->watches != NULL) {
        for (int32_t ilit = 2; ilit <= 2 * s->num_vars + 1; ilit++) {
            ClauseVec *wl = &s->watches[ilit];
            for (Py_ssize_t i = 0; i < wl->size; i++) {
                Clause *c = wl->data[i];
                if (c->deleted && --c->refs == 0)
                    free(c);
            }
            free(wl->data);
        }
    }
    if (s->bin_watches != NULL) {
        for (int32_t ilit = 2; ilit <= 2 * s->num_vars + 1; ilit++)
            free(s->bin_watches[ilit].data);
    }
    for (Py_ssize_t i = 0; i < s->clauses.size; i++)
        free(s->clauses.data[i]);
    for (Py_ssize_t i = 0; i < s->learnts.size; i++)
        free(s->learnts.data[i]);
    free(s->clauses.data);
    free(s->learnts.data);
    free(s->learned_buf.data);
    free(s->watches);
    free(s->bin_watches);
    free(s->assigns);
    free(s->level);
    free(s->reason);
    free(s->phase);
    free(s->seen);
    free(s->activity);
    free(s->lbd_mark);
    free(s->visit_mark);
    free(s->assume_mark);
    free(s->trail);
    free(s->trail_lim);
    free(s->heap);
    Py_TYPE(s)->tp_free((PyObject *)s);
}

static PyMethodDef solver_methods[] = {
    {"ensure_vars", (PyCFunction)solver_ensure_vars, METH_O,
     "Grow the variable range to at least n."},
    {"add_clause", (PyCFunction)solver_add_clause, METH_O,
     "Add a pre-cleaned clause of internal literals; returns the number of "
     "level-0 propagations it triggered."},
    {"solve", (PyCFunction)solver_solve, METH_VARARGS,
     "solve(assumptions, conflict_budget, deadline) -> (status, model, "
     "core, conflicts, decisions, propagations)"},
    {"ok", (PyCFunction)solver_ok, METH_NOARGS,
     "False once the clause database is unsatisfiable on its own."},
    {"set_reduce_base", (PyCFunction)solver_set_reduce_base, METH_O,
     "Set the learned-clause count that triggers a reduction (test hook)."},
    {"get_reduce_base", (PyCFunction)solver_get_reduce_base, METH_NOARGS,
     "The learned-clause count that triggers a reduction."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject SolverType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sat._ckernel.Solver",
    .tp_basicsize = sizeof(CSolver),
    .tp_dealloc = (destructor)solver_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled CDCL kernel (decision-for-decision twin of PySolver).",
    .tp_methods = solver_methods,
    .tp_new = solver_new,
};

static PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sat._ckernel",
    .m_doc = "Compiled CDCL propagation/analysis/backtrack kernel.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (PyType_Ready(&SolverType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&SolverType);
    if (PyModule_AddObject(module, "Solver", (PyObject *)&SolverType) < 0) {
        Py_DECREF(&SolverType);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddStringConstant(module, "KERNEL_NAME", "c") < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
