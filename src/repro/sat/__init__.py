"""Boolean satisfiability substrate.

This subpackage contains everything the paper's tool STEP obtains from
MiniSAT-class solvers and from MUSer:

* :mod:`repro.sat.cnf` — CNF formula container and DIMACS I/O.
* :mod:`repro.sat.tseitin` — clausal encodings of logic gates.
* :mod:`repro.sat.cardinality` — AtMost-k / AtLeast-k constraint encodings
  used for the paper's ``fN`` and ``fT`` constraints.
* :mod:`repro.sat.solver` — a CDCL SAT solver (watched literals, VSIDS,
  clause learning, restarts, incremental solving under assumptions) with
  optional resolution-proof logging.
* :mod:`repro.sat.proof` / :mod:`repro.sat.interpolate` — resolution proofs
  and McMillan interpolation, used to extract the decomposition functions
  ``fA`` and ``fB``.
* :mod:`repro.sat.mus` — deletion-based MUS and group-MUS extraction, the
  engine behind the STEP-MG baseline.
"""

from repro.sat.cnf import CNF, Clause
from repro.sat.solver import Solver, SolveResult
from repro.sat.cardinality import (
    at_least_one,
    at_most_one,
    at_most_k,
    at_least_k,
    exactly_k,
)
from repro.sat.mus import MusExtractor, GroupMusExtractor

__all__ = [
    "CNF",
    "Clause",
    "Solver",
    "SolveResult",
    "at_least_one",
    "at_most_one",
    "at_most_k",
    "at_least_k",
    "exactly_k",
    "MusExtractor",
    "GroupMusExtractor",
]
