"""CNF encodings of cardinality constraints.

The paper's quality-target constraints ``fT`` (formulas (5), (6) and (8)) and
the non-triviality constraint ``fN`` are cardinality constraints over the
partition control variables ``alpha_x`` / ``beta_x``:

* ``AtLeast1`` over the alpha (resp. beta) literals forbids trivial
  partitions (section IV.A.1),
* ``AtMost-k`` over the "x belongs to XC" indicators bounds disjointness
  (formula (5)),
* a difference bound over "x in XA" / "x in XB" indicators bounds
  balancedness (formula (6)), which we encode with two AtMost-k constraints
  over complementary selections.

Two AtMost-k encodings are provided: the classic *sequential counter*
(Sinz 2005), used by default, and a *totalizer* (Bailleux & Boutilier 2003)
kept for the encoding ablation benchmark.  Both produce auxiliary variables
through the :class:`repro.sat.cnf.CNF` variable counter.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import CnfError
from repro.sat.cnf import CNF, check_literal


def at_least_one(cnf: CNF, lits: Sequence[int]) -> None:
    """Assert that at least one of ``lits`` is true."""
    lits = [check_literal(l) for l in lits]
    if not lits:
        raise CnfError("AtLeast1 over an empty literal set is unsatisfiable")
    cnf.add_clause(lits)


def at_most_one(cnf: CNF, lits: Sequence[int]) -> None:
    """Pairwise AtMost1 encoding (quadratic, fine for small sets)."""
    lits = [check_literal(l) for l in lits]
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            cnf.add_clause((-lits[i], -lits[j]))


def at_most_k(cnf: CNF, lits: Sequence[int], k: int, encoding: str = "seqcounter") -> None:
    """Assert that at most ``k`` of ``lits`` are true."""
    lits = [check_literal(l) for l in lits]
    if k < 0:
        # "At most a negative count" can never hold (the true-count is always
        # at least zero); encode a fresh contradiction.
        fresh = cnf.new_var()
        cnf.add_unit(fresh)
        cnf.add_unit(-fresh)
        return
    if k >= len(lits):
        return
    if k == 0:
        for lit in lits:
            cnf.add_unit(-lit)
        return
    if encoding == "seqcounter":
        _seqcounter_at_most_k(cnf, lits, k)
    elif encoding == "totalizer":
        outputs = totalizer_outputs(cnf, lits)
        # outputs[i] is true iff at least i+1 inputs are true.
        cnf.add_unit(-outputs[k])
    elif encoding == "pairwise":
        if k == 1:
            at_most_one(cnf, lits)
        else:
            _seqcounter_at_most_k(cnf, lits, k)
    else:
        raise CnfError(f"unknown cardinality encoding: {encoding!r}")


def at_least_k(cnf: CNF, lits: Sequence[int], k: int, encoding: str = "seqcounter") -> None:
    """Assert that at least ``k`` of ``lits`` are true."""
    lits = [check_literal(l) for l in lits]
    if k <= 0:
        return
    if k > len(lits):
        # Unsatisfiable: encode a fresh contradiction.
        fresh = cnf.new_var()
        cnf.add_unit(fresh)
        cnf.add_unit(-fresh)
        return
    # at_least_k(lits, k) == at_most_k(~lits, n - k)
    at_most_k(cnf, [-l for l in lits], len(lits) - k, encoding=encoding)


def exactly_k(cnf: CNF, lits: Sequence[int], k: int, encoding: str = "seqcounter") -> None:
    """Assert that exactly ``k`` of ``lits`` are true."""
    at_most_k(cnf, lits, k, encoding=encoding)
    at_least_k(cnf, lits, k, encoding=encoding)


def _seqcounter_at_most_k(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Sinz's sequential (unary) counter encoding of AtMost-k.

    Auxiliary variable ``s[i][j]`` means "among the first i+1 literals at
    least j+1 are true"; the final constraint forbids the counter reaching
    ``k + 1`` anywhere.
    """
    n = len(lits)
    # s[i][j] for i in 0..n-1, j in 0..k-1
    s = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause((-lits[0], s[0][0]))
    for j in range(1, k):
        cnf.add_unit(-s[0][j])
    for i in range(1, n):
        cnf.add_clause((-lits[i], s[i][0]))
        cnf.add_clause((-s[i - 1][0], s[i][0]))
        for j in range(1, k):
            cnf.add_clause((-lits[i], -s[i - 1][j - 1], s[i][j]))
            cnf.add_clause((-s[i - 1][j], s[i][j]))
        cnf.add_clause((-lits[i], -s[i - 1][k - 1]))
    # The counter for the last position may not exceed k either; the clause
    # above already covers i = n-1 because it forbids lits[i] when the prefix
    # already holds k.


def totalizer_outputs(cnf: CNF, lits: Sequence[int]) -> List[int]:
    """Build a totalizer over ``lits`` and return its unary output vector.

    The returned list ``out`` has ``len(lits)`` entries; ``out[i]`` is true
    iff at least ``i + 1`` of the inputs are true, and the encoding forces
    the outputs to be monotone (``out[i+1] -> out[i]``).
    """
    lits = [check_literal(l) for l in lits]
    if not lits:
        return []
    if len(lits) == 1:
        return [lits[0]]
    mid = len(lits) // 2
    left = totalizer_outputs(cnf, lits[:mid])
    right = totalizer_outputs(cnf, lits[mid:])
    n = len(lits)
    out = [cnf.new_var() for _ in range(n)]
    # Merge clauses.  Lower direction: if at least ``alpha`` left inputs and
    # ``beta`` right inputs are true then at least ``alpha + beta`` outputs
    # are true.  Upper direction: if at most ``alpha`` left and ``beta``
    # right inputs are true then at most ``alpha + beta`` outputs are true.
    for alpha in range(0, len(left) + 1):
        for beta in range(0, len(right) + 1):
            sigma = alpha + beta
            if sigma > 0:
                antecedents = []
                if alpha > 0:
                    antecedents.append(-left[alpha - 1])
                if beta > 0:
                    antecedents.append(-right[beta - 1])
                cnf.add_clause(tuple(antecedents) + (out[sigma - 1],))
            if sigma <= n - 1:
                consequents = []
                if alpha < len(left):
                    consequents.append(left[alpha])
                if beta < len(right):
                    consequents.append(right[beta])
                cnf.add_clause(tuple(consequents) + (-out[sigma],))
    # Monotonicity of the output vector.
    for i in range(n - 1):
        cnf.add_clause((-out[i + 1], out[i]))
    return out


def counter_outputs(cnf: CNF, lits: Sequence[int]) -> List[int]:
    """Unary "at least i+1 true" outputs (alias of :func:`totalizer_outputs`).

    Provided under a neutral name for callers that only care about the
    semantics, not the encoding.
    """
    return totalizer_outputs(cnf, lits)
