"""Service quickstart: one warm daemon, several clients, one shared pool.

This example runs the whole client/server round trip inside one process:

1. start a decomposition daemon on a Unix socket (``ServiceThread`` —
   exactly what ``step serve --socket ...`` runs, embedded for the demo);
2. run a request through the blocking ``ServiceClient`` and show that the
   report is **fingerprint-identical** to a local ``Session`` run;
3. submit two requests concurrently, cancel one mid-flight, and show the
   other is unaffected;
4. read the daemon's live stats (one pool created, ever).

Run with::

    python examples/service_flow.py

Environment knobs (CI smokes the backends through these): ``STEP_JOBS``
(worker count, default 2) and ``STEP_BACKEND`` (``serial`` / ``thread`` /
``process``, default ``thread``).
"""

import os
import tempfile

from repro import DecompositionRequest, ENGINE_STEP_MG, ENGINE_STEP_QD, Session
from repro.circuits import mux_tree, ripple_carry_adder
from repro.service import ServiceClient, ServiceThread


def request_for(aig, engines=(ENGINE_STEP_MG, ENGINE_STEP_QD)):
    return DecompositionRequest(circuit=aig, operator="or", engines=tuple(engines))


def main() -> None:
    socket_path = os.path.join(tempfile.mkdtemp(prefix="repro-svc-"), "repro.sock")
    jobs = int(os.environ.get("STEP_JOBS", "2"))
    backend = os.environ.get("STEP_BACKEND", "thread")

    with ServiceThread(socket_path, jobs=jobs, backend=backend):
        print(f"daemon up on {socket_path} (backend={backend}, jobs={jobs})")

        # -- 1: a remote run is fingerprint-identical to a local one ------
        request = request_for(ripple_carry_adder(2))
        with ServiceClient(socket_path) as client:
            remote = client.run(request)
        local = Session().run(request)
        identical = remote.fingerprint() == local.fingerprint()
        print(f"remote == local fingerprints : {identical}")
        assert identical

        # -- 2: two in-flight requests, one cancelled ---------------------
        with ServiceClient(socket_path) as client:
            doomed = client.submit(request_for(ripple_carry_adder(2)))
            kept = client.submit(request_for(mux_tree(2)))
            cancelled = client.cancel(doomed)
            report = client.wait(kept)
            print(f"cancelled request {doomed}    : {cancelled}")
            print(f"surviving request {kept} ran : {report.circuit} "
                  f"({len(report.outputs)} output(s))")

            # -- 3: the daemon's live counters ----------------------------
            stats = client.stats()
            print(f"daemon stats                 : submitted={stats['submitted']} "
                  f"completed={stats['completed']} cancelled={stats['cancelled']} "
                  f"pools_created={stats['pools_created']}")
            # Cancellation is cooperative: a request whose jobs all
            # finished before the cancel frame landed completes normally.
            assert stats["pools_created"] <= 1

    print("daemon shut down cleanly")


if __name__ == "__main__":
    main()
