"""Quickstart: bi-decompose one Boolean function with the QBF engine.

Builds a function that is OR bi-decomposable by construction, asks STEP-QD
(optimum disjointness) for an OR bi-decomposition through the session API —
a typed :class:`repro.DecompositionRequest` run by a :class:`repro.Session`
— and prints the partition, the quality metrics and the extracted
sub-functions, finishing with an independent equivalence check.

Run with::

    python examples/quickstart.py

The scheduler knobs are steerable from the environment so CI can smoke
every execution backend through this script: ``STEP_JOBS`` (worker count,
default 1) and ``STEP_BACKEND`` (``serial``/``thread``/``process``,
default ``process``).  Every combination prints the same decomposition.
"""

import os

from repro import (
    Budgets,
    BooleanFunction,
    DecompositionRequest,
    ENGINE_STEP_QD,
    Parallelism,
    Session,
    verify_decomposition,
)
from repro.circuits import decomposable_by_construction


def main() -> None:
    # A function that is OR bi-decomposable by construction:
    #   f(XA, XB, XC) = gA(XA, XC) OR gB(XB, XC)
    # with |XA| = |XB| = 4 private variables and |XC| = 2 shared ones.
    aig, xa, xb, xc = decomposable_by_construction("or", 4, 4, 2, seed="quickstart")
    function = BooleanFunction.from_output(aig, "f")
    print(f"function inputs      : {function.input_names}")
    print(f"ground-truth partition: XA={xa}  XB={xb}  XC={xc}")

    request = DecompositionRequest(
        circuit=aig,
        operator="or",
        engines=(ENGINE_STEP_QD,),
        budgets=Budgets(per_call=4.0, per_output=60.0),
        parallelism=Parallelism(
            jobs=int(os.environ.get("STEP_JOBS", "1")),
            backend=os.environ.get("STEP_BACKEND", "process"),
        ),
    )
    report = Session().run(request)
    result = report.outputs[0].results[ENGINE_STEP_QD]

    if not result.decomposed:
        print("the function is not OR bi-decomposable (unexpected!)")
        return

    print()
    print(f"engine               : {result.engine}")
    print(f"partition            : {result.partition}")
    print(f"disjointness         : {float(result.partition.disjointness):.3f}")
    print(f"balancedness         : {float(result.partition.balancedness):.3f}")
    print(f"optimum proven       : {result.optimum_proven}")
    print(f"CPU seconds          : {result.cpu_seconds:.3f}")
    print(f"fA inputs            : {result.fa.input_names}")
    print(f"fB inputs            : {result.fb.input_names}")

    ok = verify_decomposition(function, "or", result.fa, result.fb, result.partition)
    print(f"f == fA OR fB        : {ok}")


if __name__ == "__main__":
    main()
