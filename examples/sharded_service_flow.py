"""Sharded tier quickstart: two shards, one router, invisible failover.

This example stands the whole fleet up inside one process:

1. start two decomposition daemons on ephemeral TCP ports
   (``ServiceThread`` — exactly what ``step serve --socket :port`` runs)
   and a consistent-hash router over them (``RouterThread`` — ``step
   route``);
2. run requests through the router and show every report is
   **fingerprint-identical** to a local ``Session`` run;
3. show routing is sticky: the same circuit always lands on the same
   shard (its warm cone cache), while different circuits spread;
4. kill the shard that served a circuit and run the request again — the
   ring fails the key over to the survivor and the report's fingerprint
   does not change.

Run with::

    python examples/sharded_service_flow.py

Environment knobs: ``STEP_JOBS`` (workers per shard, default 2) and
``STEP_BACKEND`` (``serial`` / ``thread`` / ``process``, default
``thread``).
"""

import os

from repro import DecompositionRequest, ENGINE_STEP_MG, Session
from repro.circuits import mux_tree, parity_tree, ripple_carry_adder
from repro.service import RouterThread, ServiceClient, ServiceThread


def request_for(aig):
    return DecompositionRequest(
        circuit=aig, operator="or", engines=(ENGINE_STEP_MG,)
    )


def main() -> None:
    jobs = int(os.environ.get("STEP_JOBS", "2"))
    backend = os.environ.get("STEP_BACKEND", "thread")

    # -- 1: two TCP shards, one router over them ----------------------------
    shard_a = ServiceThread("127.0.0.1:0", jobs=jobs, backend=backend).start()
    shard_b = ServiceThread("127.0.0.1:0", jobs=jobs, backend=backend).start()
    shards = {shard.address: shard for shard in (shard_a, shard_b)}
    print(f"shards up on {shard_a.address} and {shard_b.address}")

    with RouterThread("127.0.0.1:0", list(shards), probe_interval=0.2) as front:
        print(f"router up on {front.address}")

        # -- 2: routed reports are fingerprint-identical to local runs ------
        requests = [
            request_for(ripple_carry_adder(2)),
            request_for(mux_tree(3)),
            request_for(parity_tree(3)),
        ]
        with ServiceClient(front.address) as client:
            for request in requests:
                routed = client.run(request)
                local = Session().run(request)
                assert routed.fingerprint() == local.fingerprint()
            print(f"{len(requests)} routed reports == local fingerprints")

            # -- 3: routing is sticky per circuit structure -----------------
            for _ in range(2):  # replays land on the same warm shard
                client.run(requests[0])
            stats = client.stats()
            placement = {
                address: detail.get("submitted", 0)
                for address, detail in stats["shards"].items()
            }
            print(f"per-shard submits            : {placement}")
            home = max(placement, key=placement.get)

        # -- 4: kill a shard; the ring fails over, fingerprints hold --------
        print(f"killing shard {home}")
        shards.pop(home).stop()
        with ServiceClient(front.address) as client:
            rerouted = client.run(requests[0])
            stats = client.stats()
        assert rerouted.fingerprint() == Session().run(requests[0]).fingerprint()
        print(f"shards up                    : {stats['router']['shards_up']}")
        print("failover report fingerprint  : identical")

    for shard in shards.values():
        shard.stop()
    print("fleet shut down cleanly")


if __name__ == "__main__":
    main()
