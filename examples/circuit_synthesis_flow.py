"""Logic-synthesis scenario: decompose every output of a circuit.

This mirrors how the paper's tool STEP is used inside a synthesis flow: a
multi-output combinational circuit (here a small ALU slice, standing in for
an ISCAS benchmark) is loaded and every primary output is bi-decomposed.
Real flows try the gate types in sequence — OR, then AND, then XOR — and
keep the first one that succeeds; the example submits one request *per
operator* to a single :class:`repro.Session` suite, so all three sweeps
share one worker pool and stream their per-output results back as they
complete, then picks each output's first successful gate type — the
comparison the paper's Table I reports at benchmark scale.

Run with::

    python examples/circuit_synthesis_flow.py
"""

from repro import Budgets, DecompositionRequest, Parallelism, Session
from repro.circuits import alu_slice
from repro.io import aig_to_blif

ENGINES = ["STEP-MG", "STEP-QD"]
OPERATORS = ["or", "and", "xor"]


def first_successful(by_operator, output_name, engine):
    """The first gate type (OR, AND, XOR order) the engine decomposed."""
    for operator in OPERATORS:
        record = by_operator[operator][output_name]
        result = record.results.get(engine)
        if result is not None and result.decomposed:
            return operator, result
    return None, None


def main() -> None:
    circuit = alu_slice(3, name="alu3")
    print(f"circuit: {circuit.name}  inputs={len(circuit.inputs)}  outputs={len(circuit.outputs)}")

    session = Session()
    session.submit(
        DecompositionRequest(
            circuit=circuit,
            operator=operator,
            engines=tuple(ENGINES),
            budgets=Budgets(per_call=4.0, per_output=30.0),
            parallelism=Parallelism(jobs=2),
            name=f"{circuit.name}:{operator}",
        )
        for operator in OPERATORS
    )
    # One shared pool decomposes all three operator sweeps; results stream
    # back output by output, from whichever sweep finished one.
    streamed = 0
    for record in session.as_completed():
        streamed += 1
    reports = session.reports()
    print(f"streamed {streamed} per-output results from {len(reports)} suite requests")
    by_operator = {
        operator: {record.output_name: record for record in report.outputs}
        for operator, report in zip(OPERATORS, reports)
    }

    header = f"{'output':>8} {'support':>8}"
    for engine in ENGINES:
        header += f" | {engine:>8} {'gate':>5} {'eD':>5} {'eB':>5}"
    print(header)
    print("-" * len(header))
    decomposed_counts = {engine: 0 for engine in ENGINES}
    cpu = {engine: 0.0 for engine in ENGINES}
    improved = 0
    for name, _ in circuit.outputs:
        support = by_operator[OPERATORS[0]][name].num_support
        line = f"{name:>8} {support:>8}"
        per_engine = {}
        for engine in ENGINES:
            operator, result = first_successful(by_operator, name, engine)
            per_engine[engine] = result
            if result is None:
                line += f" | {'--':>8} {'--':>5} {'--':>5} {'--':>5}"
            else:
                decomposed_counts[engine] += 1
                cpu[engine] += result.cpu_seconds
                line += (
                    f" | {'ok':>8} {operator:>5} "
                    f"{result.disjointness:5.2f} {result.balancedness:5.2f}"
                )
        print(line)
        mg, qd = per_engine["STEP-MG"], per_engine["STEP-QD"]
        if mg and qd and qd.disjointness < mg.disjointness:
            improved += 1

    print("-" * len(header))
    for engine in ENGINES:
        print(
            f"{engine:>10}: decomposed {decomposed_counts[engine]} of "
            f"{len(circuit.outputs)} outputs in {cpu[engine]:.2f} s"
        )
    print(f"STEP-QD improved disjointness on {improved} outputs")

    # The flow would now replace each PO cone by the decomposed network; we
    # just show that the circuit can be serialised back to BLIF.
    blif_text = aig_to_blif(circuit)
    print(f"\nBLIF export: {len(blif_text.splitlines())} lines (unchanged circuit)")


if __name__ == "__main__":
    main()
