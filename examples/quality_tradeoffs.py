"""Explore the disjointness / balancedness trade-off on one function.

The paper's three QBF engines optimise different targets: STEP-QD minimises
the number of shared variables, STEP-QB minimises the size difference
between the private blocks, and STEP-QDB minimises their (equally weighted)
sum.  This example submits one request naming all of them — together with
the heuristic baselines LJH and STEP-MG and the BDD baseline — and prints
the resulting metric profile, illustrating why "optimal" depends on the
cost function (Definition 4 of the paper).  One request, six engines: the
driver runs STEP-MG first and shares its partition as the QBF bootstrap,
exactly as the circuit-scale benchmark sweeps do.

Run with::

    python examples/quality_tradeoffs.py
"""

from repro import Budgets, DecompositionRequest, ENGINES, Session

ENGINE_ORDER = ["LJH", "STEP-MG", "STEP-QD", "STEP-QB", "STEP-QDB", "BDD"]


def main() -> None:
    from repro.circuits import mux_tree

    # An 8-to-1 multiplexer output: decomposable in several ways with very
    # different partition shapes.
    circuit = mux_tree(3)
    request = DecompositionRequest(
        circuit=circuit,
        operator="or",
        engines=tuple(ENGINE_ORDER),
        budgets=Budgets(per_call=4.0, per_output=60.0),
    )
    report = Session().run(request)
    record = report.outputs[0]
    print(f"function: 8-to-1 mux, support = {record.num_support} variables\n")

    print(f"{'engine':>10} {'eD':>6} {'eB':>6} {'eD+eB':>7} {'optimum':>8} {'CPU(s)':>8}  partition")
    print("-" * 100)
    for engine in ENGINE_ORDER:
        result = record.results[engine]
        if not result.decomposed:
            print(f"{engine:>10} {'--':>6} {'--':>6} {'--':>7} {'--':>8}")
            continue
        print(
            f"{engine:>10} {result.disjointness:6.2f} {result.balancedness:6.2f} "
            f"{result.combined_metric:7.2f} {str(result.optimum_proven):>8} "
            f"{result.cpu_seconds:8.3f}  {result.partition}"
        )

    assert set(ENGINE_ORDER) == set(ENGINES)
    print(
        "\nSTEP-QD reaches the smallest eD, STEP-QB the smallest eB and "
        "STEP-QDB the smallest sum — the heuristic engines land wherever "
        "their greedy growth happens to stop."
    )


if __name__ == "__main__":
    main()
