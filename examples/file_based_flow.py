"""File-based flow: BENCH in, decomposed network out.

This example exercises the same I/O path as the paper's experimental setup:
a sequential BENCH netlist (the embedded s27-like controller) is read, made
combinational (the ABC ``comb`` step), every primary output is bi-decomposed,
and the resulting two-level structure ``f = fA <op> fB`` is written back out
as a BLIF network whose equivalence to the original is re-checked.

Run with::

    python examples/file_based_flow.py
"""

import os
import tempfile

from repro import (
    AIG,
    Budgets,
    BooleanFunction,
    DecompositionRequest,
    ENGINE_STEP_QD,
    Session,
)
from repro.circuits.library import _BENCH_CIRCUITS
from repro.io import aig_to_blif, parse_bench, read_bench, write_bench


def build_decomposed_network(original: AIG, results) -> AIG:
    """Assemble a new AIG whose outputs are the decomposed ``fA <op> fB``."""
    network = AIG(f"{original.name}_decomposed")
    name_to_lit = {}
    for node in original.inputs + original.latches:
        name = original.input_name(node)
        name_to_lit[name] = network.add_input(name)
    for output, result in results:
        if result is None or not result.decomposed:
            # Keep the original cone for outputs that were not decomposed.
            function = BooleanFunction.from_output(original, output)
            network.add_output(output, function.copy_into(network, name_to_lit))
            continue
        fa_lit = result.fa.copy_into(network, name_to_lit)
        fb_lit = result.fb.copy_into(network, name_to_lit)
        if result.operator == "or":
            combined = network.lor(fa_lit, fb_lit)
        elif result.operator == "and":
            combined = network.add_and(fa_lit, fb_lit)
        else:
            combined = network.lxor(fa_lit, fb_lit)
        network.add_output(output, combined)
    return network


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        bench_path = os.path.join(workdir, "controller.bench")
        with open(bench_path, "w", encoding="utf-8") as handle:
            handle.write(_BENCH_CIRCUITS["seq_ctrl"])

        sequential = read_bench(bench_path)
        print(f"read {bench_path}: {sequential!r}")
        circuit = sequential.make_combinational()
        print(f"after comb: inputs={len(circuit.inputs)} outputs={len(circuit.outputs)}")

        request = DecompositionRequest(
            circuit=circuit,
            operator="or",
            engines=(ENGINE_STEP_QD,),
            budgets=Budgets(per_call=4.0, per_output=30.0),
            verify=True,
        )
        report = Session().run(request)
        results = []
        for record in report.outputs:
            result = record.results.get(ENGINE_STEP_QD)
            results.append((record.output_name, result))
            status = result.summary() if result else "skipped (support too small)"
            print(f"  {record.output_name:>10}: {status}")

        network = build_decomposed_network(circuit, results)
        blif_path = os.path.join(workdir, "controller_decomposed.blif")
        with open(blif_path, "w", encoding="utf-8") as handle:
            handle.write(aig_to_blif(network))
        print(f"\nwrote {blif_path} ({network.num_ands} AND nodes)")

        # Independent equivalence check, output by output.
        for name, _ in circuit.outputs:
            original_fn = BooleanFunction.from_output(circuit, name)
            decomposed_fn = BooleanFunction.from_output(network, name)
            assert decomposed_fn.semantically_equal(original_fn), name
        print("all outputs of the decomposed network are equivalent to the original")


if __name__ == "__main__":
    main()
