"""Unit tests for ``repro.obs``: the metrics registry, spans, quotas
and the Prometheus exposition.

The load-bearing contracts:

* counters are monotonic, histograms use the deterministic shared bucket
  bounds, and snapshots are JSON-safe with sorted keys at every level;
* ``merge_snapshots`` is exact for matching bounds (the router's fleet
  roll-up must equal re-observing every sample in one registry);
* quantiles interpolate within buckets and clamp at the last bound;
* ``QuotaPolicy`` admission raises typed, recoverable
  :class:`Backpressure` with the offending bound named;
* spans are first-write-wins and finish() is idempotent.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import Backpressure, ReproError, ServiceError
from repro.obs.exposition import render_prometheus
from repro.obs.quota import ClientAccount, QuotaPolicy
from repro.obs.registry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
    merge_snapshots,
    quantile_from_counts,
)
from repro.obs.spans import (
    PHASE_DISPATCHED,
    PHASE_REPLIED,
    PHASE_SOLVED,
    SPAN_HISTOGRAMS,
    RequestSpan,
)


class TestCountersAndGauges:
    def test_counter_is_monotonic_and_labelled(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help me")
        counter.inc()
        counter.inc(2, kind="a")
        counter.inc(3, kind="a")
        snapshot = registry.snapshot()
        values = snapshot["counters"]["c_total"]["values"]
        assert values == {"": 1, "kind=a": 5}

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_gauge_sets_and_adds(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.add(-2)
        gauge.set(7, shard="a")
        assert registry.snapshot()["gauges"]["g"]["values"] == {
            "": 3,
            "shard=a": 7,
        }

    def test_name_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_same_name_same_kind_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestHistograms:
    def test_deterministic_shared_buckets(self):
        # The bounds are part of the wire contract: shard snapshots only
        # merge bucket-for-bucket because every process uses these.
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert len(set(LATENCY_BUCKETS)) == len(LATENCY_BUCKETS)
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds")
        histogram.observe(0.003)
        entry = registry.snapshot()["histograms"]["h_seconds"]
        assert entry["buckets"] == list(LATENCY_BUCKETS)

    def test_observe_counts_and_overflow_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        series = registry.snapshot()["histograms"]["h"]["series"][""]
        assert series["counts"] == [1, 1, 1]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(101.0)

    def test_quantiles_interpolate_and_clamp(self):
        # 100 observations spread evenly through (0, 1]: p50 ~ 0.5.
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h", buckets=tuple(i / 10 for i in range(1, 11))
        )
        for i in range(1, 101):
            histogram.observe(i / 100)
        series = registry.snapshot()["histograms"]["h"]["series"][""]
        assert series["p50"] == pytest.approx(0.5, abs=0.1)
        assert series["p99"] <= 1.0  # clamped to the last bound

    def test_quantile_from_counts_empty_is_none(self):
        assert quantile_from_counts([1.0], [0, 0], 0.5) is None

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(kind="x")
        registry.histogram("h").observe(0.2)
        encoded = json.dumps(registry.snapshot(), sort_keys=True)
        assert "p50" in encoded

    def test_thread_safety_loses_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.snapshot()["counters"]["c"]["values"][""] == 8000


class TestMerge:
    def test_merge_equals_reobserving(self):
        a, b, whole = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for value, registry in ((0.004, a), (0.2, b), (3.0, a)):
            registry.histogram("h").observe(value)
            whole.histogram("h").observe(value)
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        whole.counter("c").inc(5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        want = whole.snapshot()
        assert merged["counters"] == want["counters"]
        assert merged["histograms"] == want["histograms"]

    def test_mismatched_bounds_are_skipped_not_corrupted(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert "h" in merged.get("merge_skipped", ())


class TestExposition:
    def test_render_has_cumulative_buckets_and_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        text = render_prometheus(registry.snapshot())
        assert '# TYPE h_seconds histogram' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="2"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_count 2" in text

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(name='we"ird')
        assert 'name="we\\"ird"' in render_prometheus(registry.snapshot())


class TestSpans:
    def test_phases_first_write_wins(self):
        span = RequestSpan()
        span.mark(PHASE_DISPATCHED)
        first = span.duration("queued", PHASE_DISPATCHED)
        span.mark(PHASE_DISPATCHED)  # a later re-mark must not move it
        assert span.duration("queued", PHASE_DISPATCHED) == first

    def test_finish_is_idempotent_and_fills_replied(self):
        registry = MetricsRegistry()
        span = RequestSpan()
        span.mark(PHASE_DISPATCHED)
        span.mark(PHASE_SOLVED)
        assert span.finish(registry, client="c1") is True
        assert span.finish(registry, client="c1") is False
        assert span.marked(PHASE_REPLIED)
        histograms = registry.snapshot()["histograms"]
        for name in SPAN_HISTOGRAMS:
            series = histograms[name]["series"]
            assert series[""]["count"] == 1
            assert series["client=c1"]["count"] == 1


class TestQuota:
    def test_bounds_must_be_positive_integers(self):
        with pytest.raises(ReproError):
            QuotaPolicy(max_inflight_per_client=0)
        with pytest.raises(ReproError):
            QuotaPolicy(max_pending=-1)

    def test_admit_inflight_bound(self):
        policy = QuotaPolicy(max_inflight_per_client=2)
        policy.admit("c1", inflight=1, pending_total=10)
        with pytest.raises(Backpressure) as excinfo:
            policy.admit("c1", inflight=2, pending_total=10)
        assert excinfo.value.quota == "max_inflight_per_client"
        assert excinfo.value.limit == 2
        # Recoverable: a ServiceError subclass with a machine code.
        assert isinstance(excinfo.value, ServiceError)
        assert excinfo.value.code == "backpressure"

    def test_admit_pending_bound(self):
        policy = QuotaPolicy(max_pending=3)
        with pytest.raises(Backpressure) as excinfo:
            policy.admit("c1", inflight=0, pending_total=3)
        assert excinfo.value.quota == "max_pending"

    def test_cache_write_budget(self):
        policy = QuotaPolicy(cache_write_budget=5)
        assert not policy.cache_writes_exhausted(4)
        assert policy.cache_writes_exhausted(5)
        assert not QuotaPolicy().cache_writes_exhausted(10**9)

    def test_account_stats_shape(self):
        account = ClientAccount("c9")
        account.submitted += 2
        stats = account.stats(inflight=1)
        assert stats == {
            "inflight": 1,
            "submitted": 2,
            "rejected": 0,
            "persistent_saved": 0,
            "cache_throttled": 0,
        }
