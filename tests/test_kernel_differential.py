"""Differential tests: the compiled kernel vs the pure-Python reference.

The compiled kernel (:mod:`repro.sat._ckernel`) promises *decision-for-
decision* identity with :class:`repro.sat.solver.PySolver`: same VSIDS
tie-breaking, same restart schedule, same learned clauses, same models.
These tests run both substrates over the solver-fuzz instance corpus and
demand identical verdicts, models, cores, and work counters — not merely
equisatisfiable answers.  Every model is additionally verified against
the CNF so that an agreeing-but-wrong pair cannot pass.

All kernel-backed tests skip when the extension is not built (the
pure-Python-only CI job) and run against the pure path regardless, so
``STEP_PURE_PYTHON=1`` still exercises the non-differential assertions.
"""

import os
import subprocess
import sys

import pytest

from repro.sat.solver import (
    CKernelSolver,
    PURE_PYTHON_ENV,
    PySolver,
    Solver,
    active_kernel_name,
    kernel_available,
    kernel_forced_pure,
)
from repro.utils.rng import deterministic_rng
from repro.utils.timer import Deadline

from tests.test_solver_fuzz import INSTANCES, model_satisfies, random_3cnf

needs_kernel = pytest.mark.skipif(
    not kernel_available() or kernel_forced_pure(),
    reason="compiled kernel not built or disabled via STEP_PURE_PYTHON",
)


def _run(solver, clauses, assumptions=(), **solve_kwargs):
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve(assumptions=list(assumptions), **solve_kwargs)
    observation = {
        "status": result.status,
        "conflicts": solver.conflicts,
        "decisions": solver.decisions,
        "propagations": solver.propagations,
    }
    if result.status is True:
        observation["model"] = solver.model()
    if result.status is False and assumptions:
        observation["core"] = solver.core()
    return observation


class TestFactoryDispatch:
    @needs_kernel
    def test_default_factory_returns_the_kernel(self):
        assert isinstance(Solver(), CKernelSolver)
        assert active_kernel_name() == "c"

    def test_proof_mode_forces_the_pure_path(self):
        # Proof logging is a pure-Python feature; the factory must never
        # hand back the kernel when a resolution proof was requested.
        solver = Solver(proof=True)
        assert isinstance(solver, PySolver)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().status is False
        assert solver.proof().has_refutation

    def test_env_override_forces_the_pure_path(self, monkeypatch):
        monkeypatch.setenv(PURE_PYTHON_ENV, "1")
        assert kernel_forced_pure()
        assert isinstance(Solver(), PySolver)
        assert active_kernel_name() == "python"
        monkeypatch.setenv(PURE_PYTHON_ENV, "0")
        assert not kernel_forced_pure()


@needs_kernel
class TestFuzzMatrix:
    @pytest.mark.parametrize("label,num_vars,clauses", INSTANCES)
    def test_identical_verdicts_models_and_counters(self, label, num_vars, clauses):
        pure = _run(PySolver(), clauses)
        kern = _run(CKernelSolver(), clauses)
        assert kern == pure, f"substrates diverged on {label}"
        if pure["status"] is True:
            assert model_satisfies(pure["model"], clauses)

    @pytest.mark.parametrize("label,num_vars,clauses", INSTANCES[:12])
    def test_identical_assumption_cores(self, label, num_vars, clauses):
        rng = deterministic_rng(f"assume-{label}")
        assumptions = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 3)
        ]
        pure = _run(PySolver(), clauses, assumptions)
        kern = _run(CKernelSolver(), clauses, assumptions)
        assert kern == pure, f"substrates diverged on {label} under assumptions"
        if pure["status"] is True:
            augmented = list(clauses) + [(lit,) for lit in assumptions]
            assert model_satisfies(pure["model"], augmented)

    def test_identical_incremental_trajectories(self):
        label, num_vars, clauses = INSTANCES[0]
        half = len(clauses) // 2
        pure, kern = PySolver(), CKernelSolver()
        first = (_run(pure, clauses[:half]), _run(kern, clauses[:half]))
        second = (_run(pure, clauses[half:]), _run(kern, clauses[half:]))
        assert first[1] == first[0]
        assert second[1] == second[0]


@needs_kernel
class TestBudgetsAndDeadlines:
    def _pigeonhole(self, holes):
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    def test_conflict_budget_stops_both_substrates_at_the_same_point(self):
        clauses = self._pigeonhole(6)
        pure = _run(PySolver(), clauses, conflict_budget=5)
        kern = _run(CKernelSolver(), clauses, conflict_budget=5)
        assert pure["status"] is None
        assert kern == pure

    def test_expired_deadline_returns_unknown_on_both(self):
        clauses = [[1, 2], [-1, 2]]
        pure = _run(PySolver(), clauses, deadline=Deadline(0.0))
        kern = _run(CKernelSolver(), clauses, deadline=Deadline(0.0))
        assert pure["status"] is None
        assert kern == pure


@needs_kernel
class TestLbdReductionDifferential:
    @pytest.mark.parametrize("trial", range(6))
    def test_tiny_reduce_base_keeps_the_substrates_in_lockstep(self, trial):
        # A reduce base far below the default forces many reduction
        # rounds; any divergence in LBD scoring, the stable worst-first
        # sort, or locked/glue retention shows up as a counter mismatch.
        num_vars = 40 + 5 * trial
        clauses = random_3cnf(num_vars, int(num_vars * 4.3), f"lbd-diff-{trial}")
        pure, kern = PySolver(), CKernelSolver()
        pure._reduce_base = 30
        kern._reduce_base = 30
        assert kern._reduce_base == 30
        assert _run(kern, clauses) == _run(pure, clauses)


FINGERPRINT_SCRIPT = """
import json

from repro.circuits.generators import decomposable_by_construction
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.scheduler import BatchScheduler

aig, *_ = decomposable_by_construction("or", 6, 6, 2, seed="kernel-diff")
scheduler = BatchScheduler(BiDecomposer(EngineOptions(output_timeout=120.0)))
report = scheduler.run(aig, "or", ["STEP-MG", "STEP-QD"])
print(json.dumps({
    "kernel": report.schedule["solver_kernel"],
    "stats": report.schedule["solver_stats"],
    "fingerprint": report.fingerprint_hex(),
}))
"""


@needs_kernel
def test_engine_fingerprints_identical_across_substrates():
    """The tentpole acceptance check: kernel-on and kernel-off runs of the
    same schedule must produce bit-identical report fingerprints and
    identical aggregate solver statistics."""
    outputs = {}
    for substrate, forced in (("c", "0"), ("python", "1")):
        env = dict(os.environ)
        env[PURE_PYTHON_ENV] = forced
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-c", FINGERPRINT_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        import json

        outputs[substrate] = json.loads(proc.stdout)
    assert outputs["c"]["kernel"] == "c"
    assert outputs["python"]["kernel"] == "python"
    assert outputs["c"]["stats"] == outputs["python"]["stats"]
    assert outputs["c"]["stats"]["propagations"] > 0
    assert outputs["c"]["fingerprint"] == outputs["python"]["fingerprint"]
