"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.aig.function import BooleanFunction
from repro.circuits.generators import (
    decomposable_by_construction,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.engine import BiDecomposer, EngineOptions


@pytest.fixture
def adder3():
    """A 3-bit ripple-carry adder AIG."""
    return ripple_carry_adder(3)


@pytest.fixture
def or_decomposable_function():
    """A function OR-decomposable by construction, with its ground truth."""
    aig, xa, xb, xc = decomposable_by_construction("or", 3, 3, 1, seed=7)
    return BooleanFunction.from_output(aig, "f"), xa, xb, xc


@pytest.fixture
def and_decomposable_function():
    aig, xa, xb, xc = decomposable_by_construction("and", 3, 3, 1, seed=11)
    return BooleanFunction.from_output(aig, "f"), xa, xb, xc


@pytest.fixture
def parity5():
    """5-input parity (XOR-decomposable everywhere)."""
    return BooleanFunction.from_output(parity_tree(5), "p")


@pytest.fixture
def decomposer():
    """A BiDecomposer with verification enabled (slow but safe for tests)."""
    return BiDecomposer(EngineOptions(verify=True, output_timeout=30.0))
