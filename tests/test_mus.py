"""Tests for MUS and group-MUS extraction."""

import pytest

from repro.errors import SolverError
from repro.sat.mus import GroupMusExtractor, MusExtractor

from tests.reference import brute_force_sat


def _is_unsat(clauses, num_vars):
    return brute_force_sat(clauses, num_vars) is None


class TestMusExtractor:
    def test_simple_core(self):
        soft = [[1], [-1], [2], [3, 4]]
        extractor = MusExtractor(soft)
        mus = extractor.compute()
        assert sorted(mus) == [0, 1]

    def test_mus_is_unsatisfiable(self):
        soft = [[1, 2], [-1, 2], [1, -2], [-1, -2], [3]]
        extractor = MusExtractor(soft)
        mus = extractor.compute()
        chosen = [soft[i] for i in mus]
        assert _is_unsat(chosen, 3)

    def test_mus_is_minimal(self):
        soft = [[1, 2], [-1, 2], [1, -2], [-1, -2], [3], [-3]]
        extractor = MusExtractor(soft)
        mus = extractor.compute()
        chosen = [soft[i] for i in mus]
        assert _is_unsat(chosen, 3)
        for index in range(len(chosen)):
            reduced = chosen[:index] + chosen[index + 1 :]
            assert not _is_unsat(reduced, 3), "MUS is not minimal"

    def test_satisfiable_input_rejected(self):
        extractor = MusExtractor([[1], [2]])
        with pytest.raises(SolverError):
            extractor.compute()

    def test_hard_clauses_not_in_mus(self):
        # Hard clause (x1) together with soft (-x1) is unsatisfiable; the MUS
        # over soft clauses contains only the soft one.
        extractor = MusExtractor([[-1], [2]], hard_clauses=[[1]])
        assert extractor.compute() == [0]

    def test_statistics_recorded(self):
        extractor = MusExtractor([[1], [-1]])
        extractor.compute()
        assert extractor.stats.sat_calls >= 1
        assert extractor.stats.final_groups == 2


class TestGroupMusExtractor:
    def test_group_level_minimality(self):
        extractor = GroupMusExtractor()
        extractor.add_group("p", [[1], [-1, 2]])
        extractor.add_group("q", [[-2]])
        extractor.add_group("r", [[3, 4]])
        mus = extractor.compute()
        assert sorted(mus) == ["p", "q"]

    def test_duplicate_group_rejected(self):
        extractor = GroupMusExtractor()
        extractor.add_group("g", [[1]])
        with pytest.raises(SolverError):
            extractor.add_group("g", [[2]])

    def test_is_unsat_with_subset(self):
        extractor = GroupMusExtractor()
        extractor.add_group("a", [[1]])
        extractor.add_group("b", [[-1]])
        extractor.add_group("c", [[2]])
        assert extractor.is_unsat_with(["a", "b"]) is True
        assert extractor.is_unsat_with(["a", "c"]) is False

    def test_group_with_hard_clauses(self):
        extractor = GroupMusExtractor(hard_clauses=[[-1, -2]])
        extractor.add_group("x1", [[1]])
        extractor.add_group("x2", [[2]])
        extractor.add_group("free", [[3]])
        mus = extractor.compute()
        assert sorted(mus) == ["x1", "x2"]

    def test_satisfiable_groups_rejected(self):
        extractor = GroupMusExtractor()
        extractor.add_group("a", [[1]])
        with pytest.raises(SolverError):
            extractor.compute()

    def test_each_group_in_mus_is_necessary(self):
        extractor = GroupMusExtractor()
        extractor.add_group("a", [[1, 2]])
        extractor.add_group("b", [[-1, 2]])
        extractor.add_group("c", [[1, -2]])
        extractor.add_group("d", [[-1, -2]])
        extractor.add_group("e", [[3]])
        mus = extractor.compute()
        assert sorted(mus) == ["a", "b", "c", "d"]
        for dropped in mus:
            assert extractor.is_unsat_with([g for g in mus if g != dropped]) is False
