"""Tests for the ISCAS BENCH reader and writer."""

import pytest

from repro.aig.function import BooleanFunction
from repro.errors import ParseError
from repro.io.bench import aig_to_bench, parse_bench, read_bench, write_bench

SIMPLE_BENCH = """
# tiny example
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
OUTPUT(g)
t1 = AND(a, b)
f = OR(t1, c)
g = NOT(a)
"""


class TestParsing:
    def test_structure(self):
        aig = parse_bench(SIMPLE_BENCH)
        assert len(aig.inputs) == 3
        assert [name for name, _ in aig.outputs] == ["f", "g"]

    def test_semantics(self):
        aig = parse_bench(SIMPLE_BENCH)
        f = BooleanFunction.from_output(aig, "f")
        assert f.evaluate({"a": True, "b": True, "c": False}) is True
        assert f.evaluate({"a": False, "b": True, "c": False}) is False

    @pytest.mark.parametrize(
        "gate,table",
        [
            ("AND", 0b1000),
            ("NAND", 0b0111),
            ("OR", 0b1110),
            ("NOR", 0b0001),
            ("XOR", 0b0110),
            ("XNOR", 0b1001),
        ],
    )
    def test_gate_types(self, gate, table):
        text = f"INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = {gate}(a, b)\n"
        aig = parse_bench(text)
        assert BooleanFunction.from_output(aig, "f").truth_table() == table

    def test_multi_input_gates(self):
        text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nf = NAND(a, b, c)\n"
        aig = parse_bench(text)
        f = BooleanFunction.from_output(aig, "f")
        assert f.evaluate({"a": True, "b": True, "c": True}) is False
        assert f.evaluate({"a": True, "b": True, "c": False}) is True

    def test_buff_and_constants(self):
        text = "INPUT(a)\nOUTPUT(f)\nOUTPUT(g)\nf = BUFF(a)\ng = AND(a, vdd)\n"
        aig = parse_bench(text)
        assert BooleanFunction.from_output(aig, "f").truth_table() == 0b10
        assert BooleanFunction.from_output(aig, "g").truth_table() == 0b10

    def test_dff_becomes_latch(self):
        text = "INPUT(a)\nOUTPUT(f)\nq = DFF(a)\nf = AND(q, a)\n"
        aig = parse_bench(text)
        assert len(aig.latches) == 1
        comb = aig.make_combinational()
        assert len(comb.inputs) == 2

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = MAJ3(a, a, a)\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nthis is not a gate\n")

    def test_undriven_signal_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n")

    def test_double_definition_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = NOT(a)\nf = BUFF(a)\n")

    def test_cycle_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(f)\nf = AND(a, g)\ng = AND(a, f)\n")


class TestWriting:
    def test_roundtrip_semantics(self):
        original = parse_bench(SIMPLE_BENCH)
        reparsed = parse_bench(aig_to_bench(original))
        for name in ("f", "g"):
            assert BooleanFunction.from_output(original, name).semantically_equal(
                BooleanFunction.from_output(reparsed, name)
            )

    def test_roundtrip_with_dff(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nq = DFF(t)\nt = XOR(a, q)\nf = AND(q, b)\n"
        original = parse_bench(text)
        reparsed = parse_bench(aig_to_bench(original))
        assert len(reparsed.latches) == 1
        comb1, comb2 = original.make_combinational(), reparsed.make_combinational()
        for name in [n for n, _ in comb1.outputs]:
            assert BooleanFunction.from_output(comb1, name).semantically_equal(
                BooleanFunction.from_output(comb2, name)
            )

    def test_file_roundtrip(self, tmp_path):
        original = parse_bench(SIMPLE_BENCH)
        path = tmp_path / "tiny.bench"
        write_bench(original, str(path))
        loaded = read_bench(str(path))
        assert BooleanFunction.from_output(loaded, "f").semantically_equal(
            BooleanFunction.from_output(original, "f")
        )
