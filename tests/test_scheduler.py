"""Tests for the batch decomposition scheduler and the cone memo cache.

The scheduler's contract is *identity*: for any (jobs, dedup) combination it
must produce the same :meth:`CircuitReport.fingerprint` as the sequential,
no-dedup driver.  These tests assert that over an engine x circuit matrix,
check the dedup accounting on circuits with duplicated cones, and pin the
seed-derivation regression (``--jobs 1`` == ``--jobs 4``).
"""

import pytest

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.aig.signature import ConeCache, cone_signature
from repro.circuits.generators import (
    decomposable_by_construction,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.scheduler import BatchScheduler
from repro.core.spec import (
    ENGINE_BDD,
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QD,
)
from repro.core.verify import verify_decomposition
from repro.errors import DecompositionError
from repro.utils.rng import derive_seed


def duplicated_cone_circuit(copies=4, seed=7):
    """One decomposable cone driving ``copies`` primary outputs."""
    aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=seed)
    root = aig.outputs[0][1]
    for k in range(1, copies):
        aig.add_output(f"f{k}", root)
    return aig


def renamed_cone_circuit():
    """The same cone instantiated twice over differently named inputs."""
    source, *_ = decomposable_by_construction("or", 3, 2, 1, seed=13)
    root = source.outputs[0][1]
    cone_inputs = [
        node for node in source.inputs if node in set(source.cone_nodes([root]))
    ]
    target = AIG("renamed")
    first = {node: target.add_input(f"p{pos}") for pos, node in enumerate(cone_inputs)}
    second = {node: target.add_input(f"q{pos}") for pos, node in enumerate(cone_inputs)}
    target.add_output("f_first", source.copy_cone(root, target, first))
    target.add_output("f_second", source.copy_cone(root, target, second))
    return target


class TestConeSignature:
    def test_identical_cones_share_a_signature(self):
        aig = duplicated_cone_circuit(copies=2)
        f0 = BooleanFunction.from_output(aig, "f")
        f1 = BooleanFunction.from_output(aig, "f1")
        assert cone_signature(aig, f0.root, f0.inputs) == cone_signature(
            aig, f1.root, f1.inputs
        )

    def test_renamed_copies_share_a_signature(self):
        aig = renamed_cone_circuit()
        f0 = BooleanFunction.from_output(aig, "f_first")
        f1 = BooleanFunction.from_output(aig, "f_second")
        assert cone_signature(aig, f0.root, f0.inputs) == cone_signature(
            aig, f1.root, f1.inputs
        )

    def test_different_cones_differ(self):
        aig = ripple_carry_adder(2)
        s0 = BooleanFunction.from_output(aig, "s0")
        s1 = BooleanFunction.from_output(aig, "s1")
        assert cone_signature(aig, s0.root, s0.inputs) != cone_signature(
            aig, s1.root, s1.inputs
        )

    def test_constant_roots(self):
        aig = AIG("consts")
        aig.add_output("t", 1)
        aig.add_output("f", 0)
        assert cone_signature(aig, 1, []) != cone_signature(aig, 0, [])

    def test_cache_accounting(self):
        cache = ConeCache()
        assert cache.lookup("k") is None
        cache.store("k", 42)
        assert cache.lookup("k") == 42
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_disabled_cache_never_hits(self):
        cache = ConeCache(enabled=False)
        cache.store("k", 42)
        assert cache.lookup("k") is None
        assert cache.hits == 0 and cache.misses == 1


# The engine x circuit identity matrix.  BDD and LJH cover the non-SAT and
# heuristic paths; STEP-MG/STEP-QD cover the core-guided and QBF paths.
MATRIX = [
    (ripple_carry_adder, (2,), [ENGINE_STEP_MG, ENGINE_STEP_QD]),
    (mux_tree, (2,), [ENGINE_LJH, ENGINE_STEP_MG]),
    (parity_tree, (4,), [ENGINE_BDD, ENGINE_STEP_MG]),
    (duplicated_cone_circuit, (3,), [ENGINE_LJH, ENGINE_STEP_MG, ENGINE_STEP_QD]),
]


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("builder,args,engines", MATRIX)
    def test_fingerprints_match_across_modes(self, builder, args, engines):
        aig = builder(*args)
        sequential = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "or", engines
        )
        batched = BiDecomposer(EngineOptions(dedup=True)).decompose_circuit(
            aig, "or", engines
        )
        assert sequential.fingerprint() == batched.fingerprint()

    def test_xor_operator_matches(self):
        aig = parity_tree(5)
        sequential = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "xor", [ENGINE_STEP_MG]
        )
        batched = BiDecomposer(EngineOptions(dedup=True)).decompose_circuit(
            aig, "xor", [ENGINE_STEP_MG]
        )
        assert sequential.fingerprint() == batched.fingerprint()

    def test_parallel_matches_sequential(self):
        aig = ripple_carry_adder(2)
        sequential = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        parallel = BiDecomposer(EngineOptions(dedup=True, jobs=3)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert sequential.fingerprint() == parallel.fingerprint()
        # "requested_jobs" is asserted rather than the effective "jobs" so
        # the test also holds where no process pool can be created and the
        # scheduler legitimately falls back to the sequential path.
        assert parallel.schedule["requested_jobs"] == 3

    def test_jobs_1_equals_jobs_4(self):
        """Regression: per-job seeds derive from job identity, not order."""
        aig = duplicated_cone_circuit(copies=4, seed=21)
        one = BiDecomposer(EngineOptions(jobs=1)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD]
        )
        four = BiDecomposer(EngineOptions(jobs=4)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD]
        )
        assert one.fingerprint() == four.fingerprint()
        assert one.schedule["cache_hits"] == four.schedule["cache_hits"]
        assert one.schedule["cache_misses"] == four.schedule["cache_misses"]


class TestDedup:
    def test_duplicate_cones_decomposed_once(self):
        aig = duplicated_cone_circuit(copies=4)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert report.schedule["unique_cones"] == 1
        assert report.schedule["cache_hits"] == 3
        # Replayed results are flagged in SearchStatistics ...
        assert report.cache_hits() == 3
        flags = [
            output.results[ENGINE_STEP_MG].stats.cache_hits
            for output in report.outputs
        ]
        assert flags == [0, 1, 1, 1]
        # ... but carry the memoised search's counters.
        base = report.outputs[0].results[ENGINE_STEP_MG]
        for output in report.outputs[1:]:
            assert output.results[ENGINE_STEP_MG].stats.sat_calls == base.stats.sat_calls

    def test_renamed_duplicates_replay_with_renamed_partitions(self):
        aig = renamed_cone_circuit()
        options = EngineOptions(verify=True)
        report = BiDecomposer(options).decompose_circuit(aig, "or", [ENGINE_STEP_MG])
        assert report.schedule["cache_hits"] == 1
        first = report.outputs[0].results[ENGINE_STEP_MG]
        second = report.outputs[1].results[ENGINE_STEP_MG]
        assert first.decomposed and second.decomposed
        assert all(name.startswith("p") for name in first.partition.variables)
        assert all(name.startswith("q") for name in second.partition.variables)
        # The replayed decomposition verifies against its own cone.
        function = BooleanFunction.from_output(aig, "f_second")
        assert verify_decomposition(
            function, "or", second.fa, second.fb, second.partition
        )

    def test_dedup_off_recomputes_everything(self):
        aig = duplicated_cone_circuit(copies=3)
        report = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert report.schedule["cache_hits"] == 0
        assert report.cache_hits() == 0

    def test_small_support_outputs_not_cached(self):
        aig = AIG("tiny")
        x = aig.add_input("x")
        aig.add_output("o1", x)
        aig.add_output("o2", x)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert len(report.outputs) == 2
        assert report.schedule["unique_cones"] == 0
        assert all(not output.results for output in report.outputs)


class TestSchedulerPlanning:
    def test_plan_orders_and_costs(self):
        aig = ripple_carry_adder(3)
        scheduler = BatchScheduler(BiDecomposer())
        jobs = scheduler.plan(aig)
        assert [job.index for job in jobs] == list(range(len(aig.outputs)))
        # Later sum bits have strictly larger cones than s0.
        costs = {job.output_name: job.cost for job in jobs}
        assert costs["s2"] > costs["s0"]

    def test_plan_respects_max_outputs(self):
        aig = ripple_carry_adder(3)
        jobs = BatchScheduler(BiDecomposer()).plan(aig, max_outputs=2)
        assert len(jobs) == 2

    def test_seeds_depend_on_identity_not_order(self):
        aig = ripple_carry_adder(2)
        jobs = BatchScheduler(BiDecomposer(), seed=5).plan(aig)
        expected = [
            derive_seed(5, aig.name, job.output_name) for job in jobs
        ]
        assert [job.seed for job in jobs] == expected
        assert len({job.seed for job in jobs}) == len(jobs)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(DecompositionError):
            BatchScheduler(BiDecomposer(), jobs=0)
        with pytest.raises(DecompositionError):
            EngineOptions(jobs=0)

    def test_circuit_timeout_stops_scheduling(self):
        aig = ripple_carry_adder(3)
        report = BiDecomposer(EngineOptions(jobs=2)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG], circuit_timeout=0.0
        )
        assert len(report.outputs) == 0

    def test_circuit_timeout_forces_identical_reports_across_jobs(self):
        """Deadline semantics must not depend on the jobs count."""
        aig = ripple_carry_adder(2)
        reports = [
            BiDecomposer(EngineOptions(jobs=jobs)).decompose_circuit(
                aig, "or", [ENGINE_STEP_MG], circuit_timeout=300.0
            )
            for jobs in (1, 4)
        ]
        assert reports[0].fingerprint() == reports[1].fingerprint()
        assert len(reports[0].outputs) == len(aig.outputs)
