"""Tests for the batch decomposition scheduler and the cone memo cache.

The scheduler's contract is *identity*: for any (jobs, dedup) combination it
must produce the same :meth:`CircuitReport.fingerprint` as the sequential,
no-dedup driver.  These tests assert that over an engine x circuit matrix,
check the dedup accounting on circuits with duplicated cones, and pin the
seed-derivation regression (``--jobs 1`` == ``--jobs 4``).
"""

import pytest

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.aig.signature import (
    ConeCache,
    canonical_cone_signature,
    cone_signature,
)
from repro.circuits.generators import (
    decomposable_by_construction,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.scheduler import BatchScheduler
from repro.core.spec import (
    ENGINE_BDD,
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QD,
)
from repro.core.verify import verify_decomposition
from repro.errors import DecompositionError
from repro.utils.rng import derive_seed


def duplicated_cone_circuit(copies=4, seed=7):
    """One decomposable cone driving ``copies`` primary outputs."""
    aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=seed)
    root = aig.outputs[0][1]
    for k in range(1, copies):
        aig.add_output(f"f{k}", root)
    return aig


def renamed_cone_circuit():
    """The same cone instantiated twice over differently named inputs."""
    source, *_ = decomposable_by_construction("or", 3, 2, 1, seed=13)
    root = source.outputs[0][1]
    cone_inputs = [
        node for node in source.inputs if node in set(source.cone_nodes([root]))
    ]
    target = AIG("renamed")
    first = {node: target.add_input(f"p{pos}") for pos, node in enumerate(cone_inputs)}
    second = {node: target.add_input(f"q{pos}") for pos, node in enumerate(cone_inputs)}
    target.add_output("f_first", source.copy_cone(root, target, first))
    target.add_output("f_second", source.copy_cone(root, target, second))
    return target


def permuted_fanin_circuit():
    """Two isomorphic cones whose gates were created in opposite orders.

    Both outputs compute ``NOT((i0 AND i1) AND (i2 AND i3))`` — which is
    OR-decomposable as ``NOT(i0 AND i1) OR NOT(i2 AND i3)`` — but the second
    cone creates its lower AND gates in reverse order, so the top gate's
    strashed fanins (sorted by node index) come out commuted relative to the
    first cone and the exact DFS signature differs.
    """
    aig = AIG("permuted")
    a = [aig.add_input(f"a{k}") for k in range(4)]
    b = [aig.add_input(f"b{k}") for k in range(4)]
    g_ab = aig.add_and(a[0], a[1])
    g_cd = aig.add_and(a[2], a[3])
    aig.add_output("f_first", aig.lnot(aig.add_and(g_ab, g_cd)))
    g_rs = aig.add_and(b[2], b[3])  # lower gates in reverse creation order
    g_pq = aig.add_and(b[0], b[1])
    aig.add_output("f_second", aig.lnot(aig.add_and(g_pq, g_rs)))
    return aig


class TestConeSignature:
    def test_identical_cones_share_a_signature(self):
        aig = duplicated_cone_circuit(copies=2)
        f0 = BooleanFunction.from_output(aig, "f")
        f1 = BooleanFunction.from_output(aig, "f1")
        assert cone_signature(aig, f0.root, f0.inputs) == cone_signature(
            aig, f1.root, f1.inputs
        )

    def test_renamed_copies_share_a_signature(self):
        aig = renamed_cone_circuit()
        f0 = BooleanFunction.from_output(aig, "f_first")
        f1 = BooleanFunction.from_output(aig, "f_second")
        assert cone_signature(aig, f0.root, f0.inputs) == cone_signature(
            aig, f1.root, f1.inputs
        )

    def test_different_cones_differ(self):
        aig = ripple_carry_adder(2)
        s0 = BooleanFunction.from_output(aig, "s0")
        s1 = BooleanFunction.from_output(aig, "s1")
        assert cone_signature(aig, s0.root, s0.inputs) != cone_signature(
            aig, s1.root, s1.inputs
        )

    def test_constant_roots(self):
        aig = AIG("consts")
        aig.add_output("t", 1)
        aig.add_output("f", 0)
        assert cone_signature(aig, 1, []) != cone_signature(aig, 0, [])

    def test_cache_accounting(self):
        cache = ConeCache()
        assert cache.lookup("k") is None
        cache.store("k", 42)
        assert cache.lookup("k") == 42
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "warm_hits": 0,
        }

    def test_disabled_cache_never_hits(self):
        cache = ConeCache(enabled=False)
        cache.store("k", 42)
        assert cache.lookup("k") is None
        assert cache.hits == 0 and cache.misses == 1

    def test_warm_entries_tracked_separately(self):
        cache = ConeCache()
        cache.warm("w", 1)
        cache.store("s", 2)
        assert cache.lookup("w") == 1
        assert cache.lookup("s") == 2
        assert cache.hits == 2 and cache.warm_hits == 1
        # Recomputing a warmed key demotes it to a plain in-run entry.
        cache.store("w", 3)
        assert cache.lookup("w") == 3
        assert cache.warm_hits == 1


class TestCanonicalSignature:
    def test_permuted_fanin_cones_share_canonical_signature(self):
        aig = permuted_fanin_circuit()
        f0 = BooleanFunction.from_output(aig, "f_first")
        f1 = BooleanFunction.from_output(aig, "f_second")
        # The exact DFS signature sees the commuted construction order ...
        assert cone_signature(aig, f0.root, f0.inputs) != cone_signature(
            aig, f1.root, f1.inputs
        )
        # ... the canonical (fanin-commutative) signature does not.
        assert canonical_cone_signature(
            aig, f0.root, f0.inputs
        ) == canonical_cone_signature(aig, f1.root, f1.inputs)

    def test_identical_cones_share_canonical_signature(self):
        aig = duplicated_cone_circuit(copies=2)
        f0 = BooleanFunction.from_output(aig, "f")
        f1 = BooleanFunction.from_output(aig, "f1")
        assert canonical_cone_signature(
            aig, f0.root, f0.inputs
        ) == canonical_cone_signature(aig, f1.root, f1.inputs)

    def test_different_functions_differ(self):
        aig = ripple_carry_adder(2)
        s0 = BooleanFunction.from_output(aig, "s0")
        s1 = BooleanFunction.from_output(aig, "s1")
        assert canonical_cone_signature(
            aig, s0.root, s0.inputs
        ) != canonical_cone_signature(aig, s1.root, s1.inputs)

    def test_negated_root_differs(self):
        aig = AIG("neg")
        x = aig.add_input("x")
        y = aig.add_input("y")
        g = aig.add_and(x, y)
        assert canonical_cone_signature(aig, g, [1, 2]) != canonical_cone_signature(
            aig, aig.lnot(g), [1, 2]
        )

    def test_constant_roots(self):
        aig = AIG("consts")
        assert canonical_cone_signature(aig, 1, []) != canonical_cone_signature(
            aig, 0, []
        )

    def test_shape_is_json_stable(self):
        import json

        aig = permuted_fanin_circuit()
        f0 = BooleanFunction.from_output(aig, "f_first")
        signature = canonical_cone_signature(aig, f0.root, f0.inputs)
        num_inputs, num_gates, root = signature
        assert (num_inputs, num_gates) == (4, 3)
        assert isinstance(root, str)
        assert json.loads(json.dumps(signature)) == list(signature)


# The engine x circuit identity matrix.  BDD and LJH cover the non-SAT and
# heuristic paths; STEP-MG/STEP-QD cover the core-guided and QBF paths.
MATRIX = [
    (ripple_carry_adder, (2,), [ENGINE_STEP_MG, ENGINE_STEP_QD]),
    (mux_tree, (2,), [ENGINE_LJH, ENGINE_STEP_MG]),
    (parity_tree, (4,), [ENGINE_BDD, ENGINE_STEP_MG]),
    (duplicated_cone_circuit, (3,), [ENGINE_LJH, ENGINE_STEP_MG, ENGINE_STEP_QD]),
]


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("builder,args,engines", MATRIX)
    def test_fingerprints_match_across_modes(self, builder, args, engines):
        aig = builder(*args)
        sequential = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "or", engines
        )
        batched = BiDecomposer(EngineOptions(dedup=True)).decompose_circuit(
            aig, "or", engines
        )
        assert sequential.fingerprint() == batched.fingerprint()

    def test_xor_operator_matches(self):
        aig = parity_tree(5)
        sequential = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "xor", [ENGINE_STEP_MG]
        )
        batched = BiDecomposer(EngineOptions(dedup=True)).decompose_circuit(
            aig, "xor", [ENGINE_STEP_MG]
        )
        assert sequential.fingerprint() == batched.fingerprint()

    def test_parallel_matches_sequential(self):
        aig = ripple_carry_adder(2)
        sequential = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        parallel = BiDecomposer(EngineOptions(dedup=True, jobs=3)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert sequential.fingerprint() == parallel.fingerprint()
        # "requested_jobs" is asserted rather than the effective "jobs" so
        # the test also holds where no process pool can be created and the
        # scheduler legitimately falls back to the sequential path.
        assert parallel.schedule["requested_jobs"] == 3

    def test_jobs_1_equals_jobs_4(self):
        """Regression: per-job seeds derive from job identity, not order."""
        aig = duplicated_cone_circuit(copies=4, seed=21)
        one = BiDecomposer(EngineOptions(jobs=1)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD]
        )
        four = BiDecomposer(EngineOptions(jobs=4)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD]
        )
        assert one.fingerprint() == four.fingerprint()
        assert one.schedule["cache_hits"] == four.schedule["cache_hits"]
        assert one.schedule["cache_misses"] == four.schedule["cache_misses"]


class TestDedup:
    def test_duplicate_cones_decomposed_once(self):
        aig = duplicated_cone_circuit(copies=4)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert report.schedule["unique_cones"] == 1
        assert report.schedule["cache_hits"] == 3
        # Replayed results are flagged in SearchStatistics ...
        assert report.cache_hits() == 3
        flags = [
            output.results[ENGINE_STEP_MG].stats.cache_hits
            for output in report.outputs
        ]
        assert flags == [0, 1, 1, 1]
        # ... but carry the memoised search's counters.
        base = report.outputs[0].results[ENGINE_STEP_MG]
        for output in report.outputs[1:]:
            assert output.results[ENGINE_STEP_MG].stats.sat_calls == base.stats.sat_calls

    def test_renamed_duplicates_replay_with_renamed_partitions(self):
        aig = renamed_cone_circuit()
        options = EngineOptions(verify=True)
        report = BiDecomposer(options).decompose_circuit(aig, "or", [ENGINE_STEP_MG])
        assert report.schedule["cache_hits"] == 1
        first = report.outputs[0].results[ENGINE_STEP_MG]
        second = report.outputs[1].results[ENGINE_STEP_MG]
        assert first.decomposed and second.decomposed
        assert all(name.startswith("p") for name in first.partition.variables)
        assert all(name.startswith("q") for name in second.partition.variables)
        # The replayed decomposition verifies against its own cone.
        function = BooleanFunction.from_output(aig, "f_second")
        assert verify_decomposition(
            function, "or", second.fa, second.fb, second.partition
        )

    def test_dedup_off_recomputes_everything(self):
        aig = duplicated_cone_circuit(copies=3)
        report = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert report.schedule["cache_hits"] == 0
        assert report.cache_hits() == 0

    def test_small_support_outputs_not_cached(self):
        aig = AIG("tiny")
        x = aig.add_input("x")
        aig.add_output("o1", x)
        aig.add_output("o2", x)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert len(report.outputs) == 2
        assert report.schedule["unique_cones"] == 0
        assert all(not output.results for output in report.outputs)


class TestSchedulerPlanning:
    def test_plan_orders_and_costs(self):
        aig = ripple_carry_adder(3)
        scheduler = BatchScheduler(BiDecomposer())
        jobs = scheduler.plan(aig)
        assert [job.index for job in jobs] == list(range(len(aig.outputs)))
        # Later sum bits have strictly larger cones than s0.
        costs = {job.output_name: job.cost for job in jobs}
        assert costs["s2"] > costs["s0"]

    def test_plan_respects_max_outputs(self):
        aig = ripple_carry_adder(3)
        jobs = BatchScheduler(BiDecomposer()).plan(aig, max_outputs=2)
        assert len(jobs) == 2

    def test_seeds_depend_on_identity_not_order(self):
        aig = ripple_carry_adder(2)
        jobs = BatchScheduler(BiDecomposer(), seed=5).plan(aig)
        expected = [
            derive_seed(5, aig.name, job.output_name) for job in jobs
        ]
        assert [job.seed for job in jobs] == expected
        assert len({job.seed for job in jobs}) == len(jobs)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(DecompositionError):
            BatchScheduler(BiDecomposer(), jobs=0)
        with pytest.raises(DecompositionError):
            EngineOptions(jobs=0)

    def test_circuit_timeout_stops_scheduling(self):
        aig = ripple_carry_adder(3)
        report = BiDecomposer(EngineOptions(jobs=2)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG], circuit_timeout=0.0
        )
        assert len(report.outputs) == 0

    def test_circuit_timeout_forces_identical_reports_across_jobs(self):
        """Deadline semantics must not depend on the jobs count."""
        aig = ripple_carry_adder(2)
        reports = [
            BiDecomposer(EngineOptions(jobs=jobs)).decompose_circuit(
                aig, "or", [ENGINE_STEP_MG], circuit_timeout=300.0
            )
            for jobs in (1, 4)
        ]
        assert reports[0].fingerprint() == reports[1].fingerprint()
        assert len(reports[0].outputs) == len(aig.outputs)


class TestCanonicalDedup:
    def test_permuted_fanin_cones_share_one_search(self):
        """Acceptance: fanin-permuted isomorphic cones dedup canonically."""
        aig = permuted_fanin_circuit()
        report = BiDecomposer(EngineOptions(verify=True)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert report.schedule["unique_cones"] == 1
        assert report.schedule["cache_hits"] == 1
        first = report.outputs[0].results[ENGINE_STEP_MG]
        second = report.outputs[1].results[ENGINE_STEP_MG]
        assert first.decomposed and second.decomposed
        # The replayed partition names live on the duplicate's own inputs
        # and verify against its own cone (verify=True above re-checked it).
        assert all(name.startswith("a") for name in first.partition.variables)
        assert all(name.startswith("b") for name in second.partition.variables)
        function = BooleanFunction.from_output(aig, "f_second")
        assert verify_decomposition(
            function, "or", second.fa, second.fb, second.partition
        )

    def test_no_dedup_still_recomputes_permuted_cones(self):
        aig = permuted_fanin_circuit()
        report = BiDecomposer(EngineOptions(dedup=False)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert report.schedule["cache_hits"] == 0
        assert all(output.results[ENGINE_STEP_MG].decomposed for output in report.outputs)


class TestDeadlineSemantics:
    """Circuit budgets compose with the pool path (PR 2 tentpole)."""

    def test_deadline_no_longer_forces_sequential(self):
        """Acceptance: circuit_timeout + jobs=4 still uses the pool."""
        aig = ripple_carry_adder(3)
        report = BiDecomposer(EngineOptions(jobs=4, dedup=False)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG], circuit_timeout=300.0
        )
        # In environments where no process pool can be created the scheduler
        # must say so; everywhere else the pool must actually be used.
        if report.schedule["fallback"] is None:
            assert report.schedule["jobs"] == 4
        else:
            assert report.schedule["fallback"] == "pool-unavailable"
        assert report.schedule["skipped"] == []
        assert len(report.outputs) == len(aig.outputs)

    def test_skipped_accounting_identical_across_jobs(self):
        """jobs=1 and jobs=4 report the same skipped set on a generous budget."""
        aig = duplicated_cone_circuit(copies=4, seed=33)
        reports = [
            BiDecomposer(EngineOptions(jobs=jobs)).decompose_circuit(
                aig, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD], circuit_timeout=600.0
            )
            for jobs in (1, 4)
        ]
        assert reports[0].fingerprint() == reports[1].fingerprint()
        assert reports[0].schedule["skipped"] == reports[1].schedule["skipped"] == []
        assert reports[0].schedule["cache_hits"] == reports[1].schedule["cache_hits"]

    def test_zero_budget_reports_every_output_skipped(self):
        aig = ripple_carry_adder(3)
        for jobs in (1, 4):
            report = BiDecomposer(EngineOptions(jobs=jobs)).decompose_circuit(
                aig, "or", [ENGINE_STEP_MG], circuit_timeout=0.0
            )
            assert report.schedule["executed"] == 0
            assert report.schedule["skipped"] == [name for name, _ in aig.outputs]
            if jobs > 1:
                assert report.schedule["fallback"] == "deadline"

    def test_single_planned_job_reports_fallback(self):
        """jobs>1 on a one-output circuit is a reported sequential fallback."""
        aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=9)
        report = BiDecomposer(EngineOptions(jobs=4)).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG]
        )
        assert report.schedule["jobs"] == 1
        assert report.schedule["fallback"] == "single-job"

    def test_skipped_respects_max_outputs(self):
        aig = ripple_carry_adder(3)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG], circuit_timeout=0.0, max_outputs=2
        )
        # Outputs beyond max_outputs were excluded by request, not budget.
        assert report.schedule["skipped"] == [name for name, _ in aig.outputs[:2]]

    def test_workers_skip_jobs_past_expiry(self):
        """A pool worker whose job starts after expiry returns a skip marker."""
        from repro.core.executors import _worker_init, _worker_run
        from repro.utils.timer import Deadline

        aig = duplicated_cone_circuit(copies=2)
        options = EngineOptions(extract=False)
        _worker_init([(aig, "or", [ENGINE_STEP_MG], options, "dup")])
        slot, index, record = _worker_run((0, 0, "f", 7, Deadline(0.0)))
        assert (slot, index) == (0, 0) and record is None
        slot, index, record = _worker_run((0, 0, "f", 7, Deadline(60.0)))
        assert record is not None and record.results[ENGINE_STEP_MG].decomposed

    def test_workers_dispatch_by_circuit_slot(self):
        """Suite workers route jobs to the right circuit context by slot."""
        from repro.core.executors import _worker_init, _worker_run

        dup = duplicated_cone_circuit(copies=2)
        rca = ripple_carry_adder(2)
        options = EngineOptions(extract=False)
        _worker_init(
            [
                (dup, "or", [ENGINE_STEP_MG], options, "dup"),
                (rca, "or", [ENGINE_STEP_MG], options, "rca2"),
            ]
        )
        slot, index, record = _worker_run((1, 0, "s0", 7, None))
        assert (slot, index) == (1, 0)
        assert record is not None and record.circuit == "rca2"
        assert record.output_name == "s0"
