"""Tests for the BDD manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.function import BooleanFunction
from repro.bdd.bdd import BDD, FALSE_NODE, TRUE_NODE
from repro.errors import BddError


class TestBasics:
    def test_terminals(self):
        bdd = BDD()
        assert bdd.apply_and(TRUE_NODE, FALSE_NODE) == FALSE_NODE
        assert bdd.apply_or(TRUE_NODE, FALSE_NODE) == TRUE_NODE
        assert bdd.apply_not(TRUE_NODE) == FALSE_NODE

    def test_variable_nodes_are_shared(self):
        bdd = BDD(["x"])
        assert bdd.var("x") == bdd.var("x")

    def test_duplicate_variable_rejected(self):
        bdd = BDD(["x"])
        with pytest.raises(BddError):
            bdd.add_var("x")

    def test_unknown_variable_rejected(self):
        with pytest.raises(BddError):
            BDD().var("x")

    def test_reduction_no_redundant_nodes(self):
        bdd = BDD(["x", "y"])
        x = bdd.var("x")
        # x AND (y OR NOT y) reduces to x.
        y = bdd.var("y")
        assert bdd.apply_and(x, bdd.apply_or(y, bdd.apply_not(y))) == x

    def test_idempotent_operations(self):
        bdd = BDD(["x", "y"])
        x, y = bdd.var("x"), bdd.var("y")
        f = bdd.apply_and(x, y)
        assert bdd.apply_and(f, f) == f
        assert bdd.apply_or(f, f) == f
        assert bdd.apply_xor(f, f) == FALSE_NODE


class TestSemantics:
    def _eval_all(self, bdd, node, names):
        values = {}
        for pattern in range(1 << len(names)):
            assignment = {n: bool((pattern >> i) & 1) for i, n in enumerate(names)}
            values[pattern] = bdd.evaluate(node, assignment)
        return values

    def test_and_or_xor_tables(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        assert self._eval_all(bdd, bdd.apply_and(a, b), ["a", "b"]) == {
            0: False, 1: False, 2: False, 3: True
        }
        assert self._eval_all(bdd, bdd.apply_or(a, b), ["a", "b"]) == {
            0: False, 1: True, 2: True, 3: True
        }
        assert self._eval_all(bdd, bdd.apply_xor(a, b), ["a", "b"]) == {
            0: False, 1: True, 2: True, 3: False
        }

    def test_ite(self):
        bdd = BDD(["s", "t", "e"])
        node = bdd.ite(bdd.var("s"), bdd.var("t"), bdd.var("e"))
        for pattern in range(8):
            assignment = {
                "s": bool(pattern & 1),
                "t": bool(pattern & 2),
                "e": bool(pattern & 4),
            }
            expected = assignment["t"] if assignment["s"] else assignment["e"]
            assert bdd.evaluate(node, assignment) == expected

    def test_implies_check(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.implies(bdd.apply_and(a, b), a)
        assert not bdd.implies(a, bdd.apply_and(a, b))

    def test_restrict(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.apply_xor(a, b)
        assert bdd.restrict(f, "a", True) == bdd.apply_not(b)
        assert bdd.restrict(f, "a", False) == b

    def test_quantification(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.apply_and(a, b)
        assert bdd.exists(f, ["a"]) == b
        assert bdd.forall(f, ["a"]) == FALSE_NODE
        g = bdd.apply_or(a, b)
        assert bdd.forall(g, ["a"]) == b

    def test_support(self):
        bdd = BDD(["a", "b", "c"])
        f = bdd.apply_and(bdd.var("a"), bdd.var("c"))
        assert bdd.support(f) == ["a", "c"]

    def test_count_sat(self):
        bdd = BDD(["a", "b", "c"])
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        assert bdd.count_sat(bdd.apply_and(a, b), 3) == 2
        assert bdd.count_sat(bdd.apply_or(a, b), 3) == 6
        assert bdd.count_sat(TRUE_NODE, 3) == 8
        assert bdd.count_sat(FALSE_NODE, 3) == 0
        assert bdd.count_sat(c, 3) == 4


class TestConversions:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_from_function_matches_truth_table(self, table):
        function = BooleanFunction.from_truth_table(table, 4)
        bdd = BDD()
        node = bdd.from_function(function)
        for pattern in range(16):
            assignment = {
                name: bool((pattern >> i) & 1)
                for i, name in enumerate(function.input_names)
            }
            assert bdd.evaluate(node, assignment) == bool((table >> pattern) & 1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip_through_function(self, table):
        function = BooleanFunction.from_truth_table(table, 4)
        bdd = BDD()
        node = bdd.from_function(function)
        back = bdd.to_function(node, function.input_names)
        assert back.semantically_equal(function)

    def test_to_function_missing_support_rejected(self):
        bdd = BDD(["a", "b"])
        f = bdd.apply_and(bdd.var("a"), bdd.var("b"))
        with pytest.raises(BddError):
            bdd.to_function(f, ["a"])
