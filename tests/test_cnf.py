"""Tests for the CNF container and DIMACS I/O."""

import pytest

from repro.errors import CnfError, ParseError
from repro.sat.cnf import CNF, check_literal, normalize_clause


class TestCheckLiteral:
    def test_positive_literal_ok(self):
        assert check_literal(3) == 3

    def test_negative_literal_ok(self):
        assert check_literal(-7) == -7

    def test_zero_rejected(self):
        with pytest.raises(CnfError):
            check_literal(0)

    def test_bool_rejected(self):
        with pytest.raises(CnfError):
            check_literal(True)

    def test_non_int_rejected(self):
        with pytest.raises(CnfError):
            check_literal("x")


class TestNormalizeClause:
    def test_sorts_by_variable(self):
        assert normalize_clause([3, -1, 2]) == (-1, 2, 3)

    def test_removes_duplicates(self):
        assert normalize_clause([1, 1, 2]) == (1, 2)

    def test_detects_tautology(self):
        assert normalize_clause([1, -1, 2]) is None


class TestCnfConstruction:
    def test_new_var_increments(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_new_vars_bulk(self):
        cnf = CNF()
        assert cnf.new_vars(3) == [1, 2, 3]

    def test_new_vars_negative_count(self):
        with pytest.raises(CnfError):
            CNF().new_vars(-1)

    def test_add_clause_grows_num_vars(self):
        cnf = CNF()
        cnf.add_clause([5, -2])
        assert cnf.num_vars == 5
        assert len(cnf) == 1

    def test_add_unit(self):
        cnf = CNF()
        cnf.add_unit(-4)
        assert cnf.clauses == [(-4,)]

    def test_add_clauses(self):
        cnf = CNF()
        cnf.add_clauses([[1], [2, 3]])
        assert len(cnf) == 2

    def test_constructor_with_clauses(self):
        cnf = CNF(clauses=[[1, 2], [-1]])
        assert len(cnf) == 2
        assert cnf.num_vars == 2

    def test_negative_num_vars_rejected(self):
        with pytest.raises(CnfError):
            CNF(num_vars=-1)

    def test_zero_literal_rejected(self):
        with pytest.raises(CnfError):
            CNF().add_clause([1, 0])

    def test_extend_shares_variables(self):
        a = CNF(clauses=[[1, 2]])
        b = CNF(clauses=[[3]])
        a.extend(b)
        assert len(a) == 2
        assert a.num_vars == 3

    def test_copy_is_independent(self):
        a = CNF(clauses=[[1]])
        b = a.copy()
        b.add_clause([2])
        assert len(a) == 1
        assert len(b) == 2

    def test_variables(self):
        cnf = CNF(clauses=[[1, -3], [5]])
        assert cnf.variables() == {1, 3, 5}

    def test_iteration(self):
        cnf = CNF(clauses=[[1], [2]])
        assert list(cnf) == [(1,), (2,)]


class TestEvaluate:
    def test_satisfied(self):
        cnf = CNF(clauses=[[1, 2], [-1, 2]])
        assert cnf.evaluate({1: False, 2: True})

    def test_falsified(self):
        cnf = CNF(clauses=[[1], [-1]])
        assert not cnf.evaluate({1: True})


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF(clauses=[[1, -2], [2, 3], [-3]])
        text = cnf.to_dimacs()
        parsed = CNF.from_dimacs(text)
        assert parsed.clauses == cnf.clauses
        assert parsed.num_vars == cnf.num_vars

    def test_header_line(self):
        cnf = CNF(clauses=[[1, 2]])
        assert cnf.to_dimacs().splitlines()[0] == "p cnf 2 1"

    def test_parse_comments_and_blanks(self):
        text = "c comment\n\np cnf 3 2\n1 -2 0\nc another\n2 3 0\n"
        cnf = CNF.from_dimacs(text)
        assert len(cnf) == 2
        assert cnf.num_vars == 3

    def test_parse_clause_spanning_lines(self):
        cnf = CNF.from_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == [(1, 2, 3)]

    def test_parse_declared_vars_respected(self):
        cnf = CNF.from_dimacs("p cnf 10 1\n1 0\n")
        assert cnf.num_vars == 10

    def test_malformed_header_raises(self):
        with pytest.raises(ParseError):
            CNF.from_dimacs("p cnf oops 1\n1 0\n")

    def test_bad_literal_raises(self):
        with pytest.raises(ParseError):
            CNF.from_dimacs("p cnf 2 1\n1 x 0\n")

    def test_trailing_clause_without_zero(self):
        cnf = CNF.from_dimacs("p cnf 2 1\n1 2\n")
        assert cnf.clauses == [(1, 2)]
