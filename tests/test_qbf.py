"""Tests for the QBF substrate: formulas, QDIMACS, expansion and CEGAR."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.errors import ResourceLimitReached, SolverError
from repro.qbf.cegar import CegarTwoQbfSolver
from repro.qbf.expansion import solve_by_expansion
from repro.qbf.formula import EXISTS, FORALL, QbfFormula, QuantifierBlock
from repro.sat.cnf import CNF


class TestQbfFormula:
    def test_block_validation(self):
        with pytest.raises(SolverError):
            QuantifierBlock("x", (1,))
        with pytest.raises(SolverError):
            QuantifierBlock(EXISTS, (0,))

    def test_double_quantification_rejected(self):
        formula = QbfFormula(
            prefix=[QuantifierBlock(EXISTS, (1,)), QuantifierBlock(FORALL, (1,))],
            matrix=CNF(clauses=[[1]]),
        )
        with pytest.raises(SolverError):
            formula.validate()

    def test_close_adds_free_variables(self):
        formula = QbfFormula(
            prefix=[QuantifierBlock(FORALL, (1,))], matrix=CNF(clauses=[[1, 2]])
        )
        formula.close()
        assert formula.prefix[-1].quantifier == EXISTS
        assert 2 in formula.prefix[-1].variables

    def test_exists_forall_constructor(self):
        matrix = CNF(clauses=[[1, -2], [2, 3]])
        formula = QbfFormula.exists_forall([1], [2], matrix)
        assert formula.prefix[0].quantifier == EXISTS
        assert formula.prefix[1].quantifier == FORALL
        assert 3 in formula.bound_variables()

    def test_qdimacs_roundtrip(self):
        matrix = CNF(clauses=[[1, -2], [2, 3], [-1, -3]])
        formula = QbfFormula(
            prefix=[QuantifierBlock(EXISTS, (1,)), QuantifierBlock(FORALL, (2, 3))],
            matrix=matrix,
        )
        parsed = QbfFormula.from_qdimacs(formula.to_qdimacs())
        assert parsed.prefix == formula.prefix
        assert parsed.matrix.clauses == matrix.clauses

    def test_qdimacs_parse_errors(self):
        with pytest.raises(Exception):
            QbfFormula.from_qdimacs("p cnf x 1\n1 0\n")
        with pytest.raises(Exception):
            QbfFormula.from_qdimacs("p cnf 2 1\ne 1\n1 0\n")

    def test_num_alternations(self):
        formula = QbfFormula(
            prefix=[QuantifierBlock(EXISTS, (1,)), QuantifierBlock(FORALL, (2,))],
            matrix=CNF(clauses=[[1, 2]]),
        )
        assert formula.num_alternations == 1


class TestExpansionSolver:
    def test_pure_sat(self):
        formula = QbfFormula(prefix=[], matrix=CNF(clauses=[[1, 2], [-1]]))
        truth, _ = solve_by_expansion(formula)
        assert truth is True

    def test_pure_unsat(self):
        formula = QbfFormula(prefix=[], matrix=CNF(clauses=[[1], [-1]]))
        truth, _ = solve_by_expansion(formula)
        assert truth is False

    def test_exists_forall_true(self):
        # exists x forall y . (x OR y) AND (x OR -y)  — pick x = 1.
        matrix = CNF(clauses=[[1, 2], [1, -2]])
        formula = QbfFormula.exists_forall([1], [2], matrix)
        truth, model = solve_by_expansion(formula)
        assert truth is True
        assert model[1] is True

    def test_exists_forall_false(self):
        # exists x forall y . (x XOR y) is false.
        matrix = CNF(clauses=[[1, 2], [-1, -2]])
        formula = QbfFormula.exists_forall([1], [2], matrix)
        truth, _ = solve_by_expansion(formula)
        assert truth is False

    def test_forall_exists_true(self):
        # forall y exists x . (x XOR y) is true.
        formula = QbfFormula(
            prefix=[QuantifierBlock(FORALL, (2,)), QuantifierBlock(EXISTS, (1,))],
            matrix=CNF(clauses=[[1, 2], [-1, -2]]),
        )
        truth, _ = solve_by_expansion(formula)
        assert truth is True

    def test_forall_block_false(self):
        formula = QbfFormula(
            prefix=[QuantifierBlock(FORALL, (1,))], matrix=CNF(clauses=[[1]])
        )
        truth, _ = solve_by_expansion(formula)
        assert truth is False

    def test_three_level_formula(self):
        # exists x forall y exists z . (x) AND (y XOR z): true with x=1 since z
        # can always match y.
        matrix = CNF(clauses=[[1], [2, 3], [-2, -3]])
        formula = QbfFormula(
            prefix=[
                QuantifierBlock(EXISTS, (1,)),
                QuantifierBlock(FORALL, (2,)),
                QuantifierBlock(EXISTS, (3,)),
            ],
            matrix=matrix,
        )
        truth, model = solve_by_expansion(formula)
        assert truth is True
        assert model[1] is True

    def test_universal_limit(self):
        matrix = CNF(clauses=[[i] for i in range(1, 20)])
        formula = QbfFormula(
            prefix=[QuantifierBlock(FORALL, tuple(range(1, 20)))], matrix=matrix
        )
        with pytest.raises(ResourceLimitReached):
            solve_by_expansion(formula, max_universal_vars=4)


def _matrix_function(builder, exist_names, universal_names):
    """Build an AIG matrix over named inputs using a lambda of literals."""
    aig = AIG("matrix")
    lits = {name: aig.add_input(name) for name in exist_names + universal_names}
    root = builder(aig, lits)
    aig.add_output("m", root)
    return BooleanFunction(aig, root, [aig.input_by_name(n) for n in exist_names + universal_names])


class TestCegarTwoQbf:
    def test_simple_true_formula(self):
        # exists e forall u . (e OR u) AND (e OR NOT u)  ==> e must be 1.
        matrix = _matrix_function(
            lambda aig, lits: aig.add_and(
                aig.lor(lits["e"], lits["u"]), aig.lor(lits["e"], lits["u"] ^ 1)
            ),
            ["e"],
            ["u"],
        )
        solver = CegarTwoQbfSolver(matrix, ["e"], ["u"])
        result = solver.solve()
        assert result.status is True
        assert result.model["e"] is True

    def test_simple_false_formula(self):
        # exists e forall u . (e XOR u) is false.
        matrix = _matrix_function(
            lambda aig, lits: aig.lxor(lits["e"], lits["u"]), ["e"], ["u"]
        )
        result = CegarTwoQbfSolver(matrix, ["e"], ["u"]).solve()
        assert result.status is False

    def test_two_existentials(self):
        # exists e1 e2 forall u . (e1 AND e2) OR (u AND NOT u) -> needs e1=e2=1.
        matrix = _matrix_function(
            lambda aig, lits: aig.add_and(lits["e1"], lits["e2"]), ["e1", "e2"], ["u"]
        )
        result = CegarTwoQbfSolver(matrix, ["e1", "e2"], ["u"]).solve()
        assert result.status is True
        assert result.model == {"e1": True, "e2": True}

    def test_exist_clause_constraints(self):
        # Without constraints any e works (matrix ignores u); force e false.
        matrix = _matrix_function(lambda aig, lits: lits["e"] ^ 1, ["e"], ["u"])
        solver = CegarTwoQbfSolver(matrix, ["e"], ["u"])
        solver.add_exist_clause([("e", True)])
        result = solver.solve()
        assert result.status is False

    def test_add_exist_cnf(self):
        matrix = _matrix_function(
            lambda aig, lits: aig.lor(lits["e1"], lits["e2"]), ["e1", "e2"], ["u"]
        )
        solver = CegarTwoQbfSolver(matrix, ["e1", "e2"], ["u"])
        side = CNF()
        v1, v2 = side.new_vars(2)
        side.add_clause([-v1])
        side.add_clause([-v2])
        solver.add_exist_cnf(side, {"e1": v1, "e2": v2})
        result = solver.solve()
        assert result.status is False

    def test_unquantified_input_rejected(self):
        matrix = _matrix_function(lambda aig, lits: lits["e"], ["e"], ["u"])
        with pytest.raises(SolverError):
            CegarTwoQbfSolver(matrix, ["e"], [])

    def test_iteration_budget(self):
        matrix = _matrix_function(
            lambda aig, lits: aig.lxor(lits["e"], lits["u"]), ["e"], ["u"]
        )
        result = CegarTwoQbfSolver(matrix, ["e"], ["u"]).solve(max_iterations=1)
        # One iteration is not enough to refute; the result is unknown.
        assert result.status is None or result.status is False

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_agrees_with_expansion_solver(self, table):
        """Random 4-variable matrices: exists x0 x1 forall x2 x3 . f."""
        function = BooleanFunction.from_truth_table(table, 4)
        names = function.input_names
        cegar = CegarTwoQbfSolver(function, names[:2], names[2:]).solve()

        # Reference answer by explicit enumeration of the truth table.
        expected = False
        for e_bits in range(4):
            holds = True
            for u_bits in range(4):
                pattern = (e_bits & 1) | ((e_bits >> 1) & 1) << 1 | (u_bits & 1) << 2 | (
                    (u_bits >> 1) & 1
                ) << 3
                if not (table >> pattern) & 1:
                    holds = False
                    break
            if holds:
                expected = True
                break
        assert cegar.status is expected
