"""Tests for the ``step`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io.blif import parse_blif, read_blif


@pytest.fixture
def adder_blif(tmp_path):
    path = tmp_path / "adder.blif"
    assert main(["generate", "rca", "--width", "2", "--out", str(path)]) == 0
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self):
        args = build_parser().parse_args(["decompose", "foo.blif"])
        assert args.operator == "or"
        assert args.engine is None

    def test_engine_repeatable(self):
        args = build_parser().parse_args(
            ["decompose", "foo.blif", "--engine", "STEP-QD", "--engine", "LJH"]
        )
        assert args.engine == ["STEP-QD", "LJH"]

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompose", "foo.blif", "--engine", "XYZ"])


class TestGenerate:
    def test_generate_writes_parseable_blif(self, adder_blif):
        aig = read_blif(adder_blif)
        assert len(aig.inputs) == 4
        assert len(aig.outputs) == 3

    def test_generate_bench_extension(self, tmp_path):
        path = tmp_path / "parity.bench"
        assert main(["generate", "parity", "--width", "3", "--out", str(path)]) == 0
        assert "INPUT" in path.read_text()

    def test_generate_unknown_family(self, tmp_path, capsys):
        path = tmp_path / "x.blif"
        assert main(["generate", "nonsense", "--out", str(path)]) == 1
        assert "unknown circuit family" in capsys.readouterr().err


class TestInfo:
    def test_info_on_generated_circuit(self, adder_blif, capsys):
        assert main(["info", adder_blif]) == 0
        out = capsys.readouterr().out
        assert "inputs   : 4" in out
        assert "#InM" in out

    def test_info_on_library_circuit(self, capsys):
        assert main(["info", "c17"]) == 0
        assert "outputs  : 2" in capsys.readouterr().out


class TestDecompose:
    def test_decompose_generated_circuit(self, adder_blif, capsys):
        code = main(
            [
                "decompose",
                adder_blif,
                "--engine",
                "STEP-MG",
                "--engine",
                "STEP-QD",
                "--max-outputs",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "STEP-MG" in out and "STEP-QD" in out
        assert "#Dec" in out

    def test_decompose_library_circuit_with_verify(self, capsys):
        code = main(
            ["decompose", "majority3", "--engine", "STEP-QD", "--verify"]
        )
        assert code == 0
        assert "STEP-QD" in capsys.readouterr().out

    def test_decompose_default_engine(self, capsys):
        assert main(["decompose", "full_adder", "--operator", "xor"]) == 0
        out = capsys.readouterr().out
        assert "STEP-QD" in out

    def test_decompose_jobs_and_dedup_flags(self, adder_blif, capsys):
        code = main(
            [
                "decompose",
                adder_blif,
                "--engine",
                "STEP-MG",
                "--jobs",
                "2",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The effective jobs count depends on pool availability (the
        # scheduler may fall back to sequential); only the line's presence
        # is environment-independent.
        assert "jobs = " in out
        assert "cache hits" in out

    def test_decompose_no_dedup(self, adder_blif, capsys):
        code = main(
            ["decompose", adder_blif, "--engine", "STEP-MG", "--no-dedup"]
        )
        assert code == 0
        assert "cache hits = 0" in capsys.readouterr().out

    def test_jobs_must_be_positive(self, adder_blif, capsys):
        assert main(
            ["decompose", adder_blif, "--engine", "STEP-MG", "--jobs", "0"]
        ) == 1
        assert "jobs" in capsys.readouterr().err

    def test_circuit_timeout_composes_with_jobs(self, adder_blif, capsys):
        code = main(
            [
                "decompose",
                adder_blif,
                "--engine",
                "STEP-MG",
                "--jobs",
                "2",
                "--circuit-timeout",
                "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs = " in out
        assert "skipped" not in out  # generous budget: nothing cut off

    def test_zero_circuit_timeout_reports_skipped_outputs(self, adder_blif, capsys):
        code = main(
            [
                "decompose",
                adder_blif,
                "--engine",
                "STEP-MG",
                "--circuit-timeout",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skipped" in out
        assert "past the circuit budget" in out

    def test_cache_dir_warms_second_run(self, adder_blif, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "decompose",
            adder_blif,
            "--engine",
            "STEP-MG",
            "--cache-dir",
            cache_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "persistent hits = 0" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "persistent hits = 0" not in warm
        assert "persistent hits = " in warm

    def test_cache_dir_conflicts_with_no_dedup(self, adder_blif, tmp_path, capsys):
        code = main(
            [
                "decompose",
                adder_blif,
                "--engine",
                "STEP-MG",
                "--cache-dir",
                str(tmp_path),
                "--no-dedup",
            ]
        )
        assert code == 1
        assert "--no-dedup" in capsys.readouterr().err


class TestFlagValidation:
    """Malformed flag values fail with one-line errors, exit code 1."""

    def test_max_outputs_below_one_rejected(self, adder_blif, capsys):
        assert main(["decompose", adder_blif, "--max-outputs", "0"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--max-outputs" in err
        assert "Traceback" not in err and err.count("\n") == 1

    def test_negative_max_outputs_rejected(self, adder_blif, capsys):
        assert main(["decompose", adder_blif, "--max-outputs", "-3"]) == 1
        assert "--max-outputs" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--qbf-timeout", "--output-timeout"])
    @pytest.mark.parametrize("value", ["0", "-2.5"])
    def test_non_positive_timeouts_rejected(self, adder_blif, capsys, flag, value):
        assert main(["decompose", adder_blif, flag, value]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert flag in err
        assert err.count("\n") == 1

    def test_negative_circuit_timeout_rejected(self, adder_blif, capsys):
        assert main(["decompose", adder_blif, "--circuit-timeout", "-1"]) == 1
        assert "--circuit-timeout" in capsys.readouterr().err
        # --circuit-timeout 0 stays legal: it reports every output skipped
        # (covered by test_zero_circuit_timeout_reports_skipped_outputs).

    def test_validation_runs_before_circuit_loading(self, capsys):
        """Flag errors surface even when the circuit path is also bad."""
        assert main(["decompose", "no_such.blif", "--max-outputs", "0"]) == 1
        assert "--max-outputs" in capsys.readouterr().err


class TestErrorReporting:
    def test_missing_circuit_file_is_one_line_error(self, capsys):
        assert main(["decompose", "no_such_circuit.blif"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no_such_circuit.blif" in err
        assert "Traceback" not in err

    def test_missing_file_for_info(self, capsys):
        assert main(["info", "missing.bench"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_malformed_circuit_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.blif"
        path.write_text(".model broken\n.names a b\nnot-a-cover\n")
        assert main(["decompose", str(path)]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_binary_circuit_file(self, tmp_path, capsys):
        path = tmp_path / "binary.blif"
        path.write_bytes(b"\xff\xfe\x00\x80junk")
        assert main(["info", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unwritable_output_path(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "out.blif"
        assert main(["generate", "rca", "--width", "2", "--out", str(target)]) == 1
        assert capsys.readouterr().err.startswith("error:")
