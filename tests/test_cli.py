"""Tests for the ``step`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io.blif import parse_blif, read_blif


@pytest.fixture
def adder_blif(tmp_path):
    path = tmp_path / "adder.blif"
    assert main(["generate", "rca", "--width", "2", "--out", str(path)]) == 0
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self):
        args = build_parser().parse_args(["decompose", "foo.blif"])
        assert args.operator == "or"
        assert args.engine is None

    def test_engine_repeatable(self):
        args = build_parser().parse_args(
            ["decompose", "foo.blif", "--engine", "STEP-QD", "--engine", "LJH"]
        )
        assert args.engine == ["STEP-QD", "LJH"]

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompose", "foo.blif", "--engine", "XYZ"])


class TestGenerate:
    def test_generate_writes_parseable_blif(self, adder_blif):
        aig = read_blif(adder_blif)
        assert len(aig.inputs) == 4
        assert len(aig.outputs) == 3

    def test_generate_bench_extension(self, tmp_path):
        path = tmp_path / "parity.bench"
        assert main(["generate", "parity", "--width", "3", "--out", str(path)]) == 0
        assert "INPUT" in path.read_text()

    def test_generate_unknown_family(self, tmp_path, capsys):
        path = tmp_path / "x.blif"
        assert main(["generate", "nonsense", "--out", str(path)]) == 1
        assert "unknown circuit family" in capsys.readouterr().err


class TestInfo:
    def test_info_on_generated_circuit(self, adder_blif, capsys):
        assert main(["info", adder_blif]) == 0
        out = capsys.readouterr().out
        assert "inputs   : 4" in out
        assert "#InM" in out

    def test_info_on_library_circuit(self, capsys):
        assert main(["info", "c17"]) == 0
        assert "outputs  : 2" in capsys.readouterr().out


class TestDecompose:
    def test_decompose_generated_circuit(self, adder_blif, capsys):
        code = main(
            [
                "decompose",
                adder_blif,
                "--engine",
                "STEP-MG",
                "--engine",
                "STEP-QD",
                "--max-outputs",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "STEP-MG" in out and "STEP-QD" in out
        assert "#Dec" in out

    def test_decompose_library_circuit_with_verify(self, capsys):
        code = main(
            ["decompose", "majority3", "--engine", "STEP-QD", "--verify"]
        )
        assert code == 0
        assert "STEP-QD" in capsys.readouterr().out

    def test_decompose_default_engine(self, capsys):
        assert main(["decompose", "full_adder", "--operator", "xor"]) == 0
        out = capsys.readouterr().out
        assert "STEP-QD" in out

    def test_decompose_jobs_and_dedup_flags(self, adder_blif, capsys):
        code = main(
            [
                "decompose",
                adder_blif,
                "--engine",
                "STEP-MG",
                "--jobs",
                "2",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The effective jobs count depends on pool availability (the
        # scheduler may fall back to sequential); only the line's presence
        # is environment-independent.
        assert "jobs = " in out
        assert "cache hits" in out

    def test_decompose_no_dedup(self, adder_blif, capsys):
        code = main(
            ["decompose", adder_blif, "--engine", "STEP-MG", "--no-dedup"]
        )
        assert code == 0
        assert "cache hits = 0" in capsys.readouterr().out

    def test_jobs_must_be_positive(self, adder_blif, capsys):
        assert main(
            ["decompose", adder_blif, "--engine", "STEP-MG", "--jobs", "0"]
        ) == 1
        assert "jobs" in capsys.readouterr().err
