"""Tests for the benchmark snapshot comparator (``benchmarks/compare_bench.py``).

The comparator is loaded by file path (``benchmarks/`` is not a package)
and exercised through its ``main`` entry point, the same surface CI uses.
"""

import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
MODULE_PATH = os.path.join(REPO_ROOT, "benchmarks", "compare_bench.py")

spec = importlib.util.spec_from_file_location("compare_bench", MODULE_PATH)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


def snapshot(seconds, *, calibration=None, counters=None, schema=2):
    data = {
        "schema": schema,
        "benchmark": "solver_hotpath",
        "workloads": {
            name: {"seconds": value} for name, value in seconds.items()
        },
    }
    if schema == 2:
        data["python"] = "3.11.7"
        data["kernel"] = {"name": "c", "available": True, "forced_pure": False}
        if calibration is not None:
            data["calibration_seconds"] = calibration
    if counters:
        for name, values in counters.items():
            data["workloads"][name].update(values)
    return data


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestGates:
    def test_identical_snapshots_pass(self, tmp_path):
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.0}))
        assert compare_bench.main([base, cur]) == 0

    def test_small_slowdown_within_threshold_passes(self, tmp_path):
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.15}))
        assert compare_bench.main([base, cur]) == 0

    def test_regression_beyond_threshold_fails(self, tmp_path):
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.5}))
        assert compare_bench.main([base, cur]) == 1

    def test_threshold_is_configurable(self, tmp_path):
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.5}))
        assert compare_bench.main([base, cur, "--max-regression", "0.6"]) == 0

    def test_min_speedup_gate(self, tmp_path):
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}))
        cur = write(tmp_path, "b.json", snapshot({"w": 0.2}))
        assert compare_bench.main([base, cur, "--min-speedup", "3"]) == 0
        assert compare_bench.main([base, cur, "--min-speedup", "6"]) == 1

    def test_workload_filter_restricts_the_gates(self, tmp_path):
        base = write(tmp_path, "a.json", snapshot({"fast": 1.0, "slow": 1.0}))
        cur = write(tmp_path, "b.json", snapshot({"fast": 0.1, "slow": 2.0}))
        assert compare_bench.main([base, cur]) == 1
        assert compare_bench.main([base, cur, "--workload", "fast"]) == 0
        with pytest.raises(SystemExit):
            compare_bench.main([base, cur, "--workload", "missing"])


class TestNormalization:
    def test_calibration_scales_the_current_times(self, tmp_path):
        # The current machine is 2x slower (calibration 0.2 vs 0.1), so a
        # 1.8s measurement normalizes to 0.9s and passes.
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}, calibration=0.1))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.8}, calibration=0.2))
        assert compare_bench.main([base, cur]) == 0
        assert compare_bench.main([base, cur, "--no-normalize"]) == 1

    def test_schema_1_snapshots_compare_without_normalization(self, tmp_path):
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}, schema=1))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.0}, schema=1))
        assert compare_bench.main([base, cur]) == 0

    def test_unknown_schema_is_rejected(self, tmp_path):
        bad = write(tmp_path, "a.json", {"schema": 99, "workloads": {}})
        good = write(tmp_path, "b.json", snapshot({"w": 1.0}))
        with pytest.raises(SystemExit):
            compare_bench.main([bad, good])


class TestCounterDrift:
    def test_counter_drift_fails_even_when_faster(self, tmp_path):
        counters = {"w": {"conflicts": 10, "decisions": 20, "propagations": 30}}
        drifted = {"w": {"conflicts": 11, "decisions": 20, "propagations": 30}}
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}, counters=counters))
        cur = write(tmp_path, "b.json", snapshot({"w": 0.5}, counters=drifted))
        assert compare_bench.main([base, cur]) == 1

    def test_identical_counters_pass(self, tmp_path):
        counters = {"w": {"conflicts": 10, "decisions": 20, "propagations": 30}}
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}, counters=counters))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.0}, counters=counters))
        assert compare_bench.main([base, cur]) == 0

    def test_counters_missing_on_one_side_are_ignored(self, tmp_path):
        counters = {"w": {"conflicts": 10, "decisions": 20, "propagations": 30}}
        base = write(tmp_path, "a.json", snapshot({"w": 1.0}, schema=1))
        cur = write(tmp_path, "b.json", snapshot({"w": 1.0}, counters=counters))
        assert compare_bench.main([base, cur]) == 0
