"""Tests for the pluggable executor backends and the suite features the
backend seam unlocked (fair cross-request scheduling, cross-circuit dedup).

The central contract is the differential one the acceptance criteria name:
``serial``, ``thread`` and ``process`` backends produce
fingerprint-identical :class:`CircuitReport`\\ s for any jobs count, solo
and in suites — the backend decides *where* searches run, never *what*
they compute.
"""

import pytest

from repro import (
    Budgets,
    CachePolicy,
    DecompositionRequest,
    Parallelism,
    Session,
)
from repro.circuits.generators import (
    decomposable_by_construction,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.executors import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_THREAD,
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    check_backend,
    create_backend,
    strongest_backend,
)
from repro.core.scheduler import OutputJob, fair_dispatch
from repro.core.spec import ENGINE_LJH, ENGINE_STEP_MG, ENGINE_STEP_QD
from repro.errors import DecompositionError, ReproError


def request_for(aig, engines=(ENGINE_STEP_MG,), jobs=1, backend=BACKEND_PROCESS, **kwargs):
    kwargs.setdefault("parallelism", Parallelism(jobs=jobs, backend=backend))
    return DecompositionRequest(
        circuit=aig, operator="or", engines=tuple(engines), **kwargs
    )


def twin_cone_circuit(name, copies=2, seed=5):
    """A named circuit whose outputs all share one decomposable cone."""
    aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=seed)
    aig.name = name
    root = aig.outputs[0][1]
    for k in range(1, copies):
        aig.add_output(f"f{k}", root)
    return aig


class TestBackendRegistry:
    def test_backend_names_and_order(self):
        assert BACKENDS == ("serial", "thread", "process")
        for name in BACKENDS:
            assert check_backend(name) == name

    def test_unknown_backend_rejected_everywhere(self):
        with pytest.raises(DecompositionError, match="unknown executor backend"):
            check_backend("gpu")
        with pytest.raises(ReproError, match="unknown executor backend"):
            Parallelism(backend="gpu")

    def test_create_backend_types_and_workers(self):
        assert isinstance(create_backend("serial", 4), SerialBackend)
        assert isinstance(create_backend("thread", 4), ThreadBackend)
        assert isinstance(create_backend("process", 4), ProcessBackend)
        # Serial means serial: the requested worker count is ignored.
        assert create_backend("serial", 4).workers == 1
        assert create_backend("thread", 4).workers == 4

    def test_strongest_backend(self):
        assert strongest_backend(["serial"]) == "serial"
        assert strongest_backend(["serial", "thread"]) == "thread"
        assert strongest_backend(["thread", "process", "serial"]) == "process"


# The differential matrix: every backend, jobs=1 and jobs=4, must match the
# serial/jobs=1 reference fingerprint exactly.
DIFF_MATRIX = [
    (ripple_carry_adder, (2,), [ENGINE_STEP_MG, ENGINE_STEP_QD]),
    (mux_tree, (2,), [ENGINE_LJH, ENGINE_STEP_MG]),
    (parity_tree, (4,), [ENGINE_STEP_MG]),
]


class TestBackendDifferential:
    @pytest.mark.parametrize("builder,args,engines", DIFF_MATRIX)
    def test_solo_fingerprints_identical_across_backends_and_jobs(
        self, builder, args, engines
    ):
        """Acceptance: the three backends yield fingerprint-identical
        reports (jobs=1 and jobs=4)."""
        aig = builder(*args)
        reference = None
        for backend in BACKENDS:
            for jobs in (1, 4):
                report = Session().run(
                    request_for(aig, engines=engines, jobs=jobs, backend=backend)
                )
                if reference is None:
                    reference = report.fingerprint()
                assert report.fingerprint() == reference, (
                    f"{backend}/jobs={jobs} diverged from the reference"
                )

    def test_suite_fingerprints_identical_across_backends(self):
        circuits = [mux_tree(2), ripple_carry_adder(2), parity_tree(4)]
        reference = None
        for backend in BACKENDS:
            session = Session()
            session.submit(
                [request_for(aig, jobs=4, backend=backend) for aig in circuits]
            )
            streamed = sorted(
                record.fingerprint() for record in session.as_completed()
            )
            fingerprints = [report.fingerprint() for report in session.reports()]
            for report in session.reports():
                assert report.schedule["backend"] == backend
            if reference is None:
                reference = (streamed, fingerprints)
            assert (streamed, fingerprints) == reference

    def test_thread_backend_reports_schedule(self):
        """The thread backend is a real parallel path: no fallback, and
        the worker count it was sized to."""
        report = Session().run(
            request_for(ripple_carry_adder(3), jobs=3, backend=BACKEND_THREAD)
        )
        assert report.schedule["fallback"] is None
        assert report.schedule["jobs"] == 3
        assert report.schedule["backend"] == "thread"

    def test_serial_backend_is_one_worker_no_fallback(self):
        report = Session().run(
            request_for(ripple_carry_adder(2), jobs=4, backend=BACKEND_SERIAL)
        )
        assert report.schedule["fallback"] is None
        assert report.schedule["jobs"] == 1
        assert report.schedule["requested_jobs"] == 4

    def test_serial_suite_budgets_arm_per_unit(self):
        """A serial-backend suite runs units strictly one after another, so
        it must take the sequential path where each unit's circuit budget
        starts when the unit does — a generous budget on the second unit
        must never be drained by the first unit's inline execution."""
        from repro import default_registry, EngineSpec
        from repro.core.result import BiDecResult
        import time

        def sleepy(function, operator, *, options, deadline):
            time.sleep(0.3)
            return BiDecResult(
                engine="TEST-SNAIL", operator=operator, decomposed=False
            )

        default_registry().register(EngineSpec("TEST-SNAIL", runner=sleepy))
        try:
            session = Session()
            session.submit(
                [
                    request_for(
                        ripple_carry_adder(2),
                        engines=("TEST-SNAIL",),
                        jobs=4,
                        backend=BACKEND_SERIAL,
                    ),
                    request_for(
                        mux_tree(2),
                        jobs=4,
                        backend=BACKEND_SERIAL,
                        budgets=Budgets(per_circuit=0.5),
                    ),
                ]
            )
            list(session.as_completed())
            first, second = session.reports()
            # The first unit ran ~0.9s inline; were budgets armed at
            # executor start, the second unit's 0.5s budget would be gone.
            assert second.schedule["skipped"] == []
            assert len(second.outputs) == 1
            assert first.schedule["backend"] == "serial"
        finally:
            default_registry().unregister("TEST-SNAIL")

    def test_thread_backend_honours_expired_circuit_budget(self):
        report = Session().run(
            request_for(
                ripple_carry_adder(3),
                jobs=4,
                backend=BACKEND_THREAD,
                budgets=Budgets(per_circuit=0.0),
            )
        )
        assert report.schedule["executed"] == 0
        assert report.schedule["skipped"] == ["s0", "s1", "s2", "cout"]

    def test_thread_backend_works_where_fork_is_rejected(self):
        """A daemonic parent *process* cannot fork a multiprocessing pool
        ("daemonic processes are not allowed to have children"); the thread
        backend must actually fan out there — the caveat that motivated it.
        The process backend in the same environment must report the
        pool-unavailable fallback, proving the restriction was real."""
        import multiprocessing

        def run_in_daemon(queue):
            outcome = {}
            for backend in (BACKEND_THREAD, BACKEND_PROCESS):
                report = Session().run(
                    request_for(ripple_carry_adder(2), jobs=2, backend=backend)
                )
                outcome[backend] = {
                    "fallback": report.schedule["fallback"],
                    "jobs": report.schedule["jobs"],
                    "fingerprint": report.fingerprint(),
                }
            queue.put(outcome)

        try:
            context = multiprocessing.get_context("fork")
            queue = context.SimpleQueue()
            daemon = context.Process(
                target=run_in_daemon, args=(queue,), daemon=True
            )
            daemon.start()
        except (OSError, ValueError):
            pytest.skip("cannot create processes in this environment")
        daemon.join(timeout=120)
        # Diagnose a crashed/hung child instead of blocking on queue.get().
        assert daemon.exitcode == 0, f"daemon child failed (exit {daemon.exitcode})"
        assert not queue.empty(), "daemon child exited without reporting"
        outcome = queue.get()
        # The restriction is real: the process backend had to fall back ...
        assert outcome[BACKEND_PROCESS]["fallback"] == "pool-unavailable"
        # ... while the thread backend genuinely fanned out.
        assert outcome[BACKEND_THREAD]["fallback"] is None
        assert outcome[BACKEND_THREAD]["jobs"] == 2
        solo = Session().run(request_for(ripple_carry_adder(2)))
        for backend in (BACKEND_THREAD, BACKEND_PROCESS):
            assert outcome[backend]["fingerprint"] == solo.fingerprint()


class TestFairDispatch:
    @staticmethod
    def job(index, cost):
        return OutputJob(
            index=index,
            output_name=f"o{index}",
            num_support=3,
            input_names=(),
            cost=cost,
            seed=0,
            cache_key=None,
        )

    def test_heavy_unit_no_longer_starves_light_units(self):
        """The old global heaviest-first sort put every heavy cone ahead of
        the light unit; fair queueing dispatches the light unit first."""
        heavy = [self.job(i, 100) for i in range(3)]
        light = [self.job(i, 5) for i in range(3)]
        order = [
            (slot, job.index)
            for slot, job in fair_dispatch([heavy, light], [1.0, 1.0])
        ]
        # All light jobs precede the second heavy job.
        positions = {item: pos for pos, item in enumerate(order)}
        assert positions[(1, 2)] < positions[(0, 1)]
        assert len(order) == 6

    def test_within_a_unit_heaviest_first_is_preserved(self):
        jobs = [self.job(0, 10), self.job(1, 50), self.job(2, 30)]
        order = [job.index for _slot, job in fair_dispatch([jobs], [1.0])]
        assert order == [1, 2, 0]

    def test_priority_weights_the_interleave(self):
        """Priority 10 makes 100-cost cones as cheap as 10-cost ones: the
        units alternate instead of the light unit going first."""
        heavy = [self.job(i, 99) for i in range(4)]
        light = [self.job(i, 9) for i in range(4)]
        order = [
            slot for slot, _job in fair_dispatch([heavy, light], [10.0, 1.0])
        ]
        assert order == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_deterministic_and_complete(self):
        queues = [
            [self.job(i, (7 * i) % 13) for i in range(5)],
            [self.job(i, (5 * i) % 11) for i in range(4)],
            [self.job(i, 3) for i in range(3)],
        ]
        first = fair_dispatch(queues, [1.0, 2.0, 0.5])
        second = fair_dispatch(queues, [1.0, 2.0, 0.5])
        assert first == second
        assert len(first) == 12

    def test_request_priority_validation(self):
        with pytest.raises(ReproError, match="priority"):
            request_for(mux_tree(2), priority=0)
        with pytest.raises(ReproError, match="priority"):
            request_for(mux_tree(2), priority=-2.5)
        assert request_for(mux_tree(2), priority=3).priority == 3

    def test_priority_reported_in_suite_schedule(self):
        session = Session()
        session.submit(
            [
                request_for(mux_tree(2), priority=2.0),
                request_for(ripple_carry_adder(2)),
            ]
        )
        list(session.as_completed())
        first, second = session.reports()
        assert first.schedule["priority"] == 2.0
        assert second.schedule["priority"] == 1.0


class TestCrossCircuitDedup:
    def test_flag_requires_dedup(self):
        with pytest.raises(ReproError, match="cross_circuit_dedup"):
            request_for(
                mux_tree(2),
                parallelism=Parallelism(dedup=False),
                cache=CachePolicy(cross_circuit_dedup=True),
            )

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_cross_unit_replays_counted_and_fingerprints_stable(self, jobs):
        """Two circuits carrying structural twins of one cone: with the flag
        the second unit replays the first unit's search (counted in
        ``cross_circuit_hits``); for traversal-order-exact twins the replay
        is bit-identical, so fingerprints still match solo runs."""
        circuit_a = twin_cone_circuit("twinA", copies=2)
        circuit_b = twin_cone_circuit("twinB", copies=2)
        requests = [
            request_for(aig, jobs=jobs, cache=CachePolicy(cross_circuit_dedup=True))
            for aig in (circuit_a, circuit_b)
        ]
        session = Session()
        session.submit(requests)
        list(session.as_completed())
        reports = session.reports()
        assert all(r.schedule["cross_circuit_dedup"] is True for r in reports)
        # Exactly one unit computed the shared cone; the others replayed it
        # across the circuit boundary.
        assert sum(r.schedule["cross_circuit_hits"] for r in reports) == 1
        for request, report in zip(requests, reports):
            solo = Session().run(
                request.with_(parallelism=Parallelism(jobs=1))
            )
            assert solo.fingerprint() == report.fingerprint()

    def test_off_by_default_no_cross_stats_and_solo_identical(self):
        circuits = [twin_cone_circuit("offA"), twin_cone_circuit("offB")]
        session = Session()
        requests = [request_for(aig) for aig in circuits]
        session.submit(requests)
        list(session.as_completed())
        for request, report in zip(requests, session.reports()):
            assert "cross_circuit_dedup" not in report.schedule
            assert "cross_circuit_hits" not in report.schedule
            solo = Session().run(request)
            assert solo.fingerprint() == report.fingerprint()

    def test_mixed_optin_only_optin_units_share(self):
        """A unit that did not opt in never serves from (or reads) the
        suite-wide store, even when its twin exists there."""
        session = Session()
        session.submit(
            [
                request_for(
                    twin_cone_circuit("mixA"),
                    cache=CachePolicy(cross_circuit_dedup=True),
                ),
                request_for(twin_cone_circuit("mixB")),  # not opted in
            ]
        )
        list(session.as_completed())
        first, second = session.reports()
        assert first.schedule["cross_circuit_hits"] == 0
        assert "cross_circuit_hits" not in second.schedule

    def test_different_search_contexts_never_share(self):
        """Same cones, different per-call budgets: context strings differ,
        so no cross-unit replay may happen."""
        session = Session()
        session.submit(
            [
                request_for(
                    twin_cone_circuit("ctxA"),
                    cache=CachePolicy(cross_circuit_dedup=True),
                    budgets=Budgets(per_call=4.0),
                ),
                request_for(
                    twin_cone_circuit("ctxB"),
                    cache=CachePolicy(cross_circuit_dedup=True),
                    budgets=Budgets(per_call=2.0),
                ),
            ]
        )
        list(session.as_completed())
        for report in session.reports():
            assert report.schedule["cross_circuit_hits"] == 0

    def test_in_unit_dedup_accounting_unchanged_by_flag(self):
        """The suite-wide store must not perturb per-unit hit/miss stats."""
        aig = twin_cone_circuit("soloTwins", copies=3)
        session = Session()
        session.submit(
            [request_for(aig, cache=CachePolicy(cross_circuit_dedup=True))]
        )
        list(session.as_completed())
        (report,) = session.reports()
        assert report.schedule["unique_cones"] == 1
        assert report.schedule["cache_hits"] == 2
        assert report.schedule["cross_circuit_hits"] == 0


class TestCliBackend:
    def test_backend_flag_accepted_and_reported(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io.blif import write_blif

        path = tmp_path / "rca2.blif"
        write_blif(ripple_carry_adder(2), str(path))
        outputs = {}
        for backend in BACKENDS:
            assert (
                main(
                    [
                        "decompose",
                        str(path),
                        "--engine",
                        "STEP-MG",
                        "--jobs",
                        "2",
                        "--backend",
                        backend,
                    ]
                )
                == 0
            )
            captured = capsys.readouterr().out
            assert f"backend = {backend}" in captured
            # The decomposition content (everything above the schedule
            # line, with wall-clock timings masked) is backend-independent.
            import re

            content = captured.split("schedule")[0]
            outputs[backend] = re.sub(r"\d+\.\d+\s*s", "<t>", content)
        assert outputs["serial"] == outputs["thread"] == outputs["process"]

    def test_unknown_backend_flag_rejected(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["decompose", "rca2", "--backend", "gpu"])
