"""Tests for repro.utils (timers, deterministic RNG)."""

import time

import pytest

from repro.utils.rng import derive_seed, deterministic_rng, job_rng, seeded_job
from repro.utils.timer import Deadline, Stopwatch


class TestStopwatch:
    def test_initially_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_accumulates_time(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.009

    def test_stop_without_start_is_noop(self):
        watch = Stopwatch()
        assert watch.stop() == 0.0

    def test_multiple_segments_accumulate(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        watch.stop()
        first = watch.elapsed
        watch.start()
        time.sleep(0.005)
        watch.stop()
        assert watch.elapsed > first

    def test_context_manager(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.005)
        assert watch.elapsed >= 0.004

    def test_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0.0
        watch.stop()


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired
        assert deadline.remaining() is None

    def test_zero_budget_expires_immediately(self):
        assert Deadline(0.0).expired

    def test_positive_budget_not_expired_immediately(self):
        assert not Deadline(10.0).expired

    def test_remaining_decreases(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        time.sleep(0.005)
        assert deadline.remaining() <= first

    def test_remaining_clamped_at_zero(self):
        deadline = Deadline(0.0)
        assert deadline.remaining() == 0.0

    def test_sub_deadline_of_unlimited(self):
        child = Deadline.unlimited().sub_deadline(5.0)
        assert child.budget == 5.0

    def test_sub_deadline_respects_parent(self):
        parent = Deadline(0.0)
        child = parent.sub_deadline(100.0)
        assert child.budget == 0.0

    def test_sub_deadline_none_inherits_parent_remaining(self):
        parent = Deadline(10.0)
        child = parent.sub_deadline(None)
        assert child.budget is not None and child.budget <= 10.0


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = deterministic_rng(42)
        b = deterministic_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = deterministic_rng(1)
        b = deterministic_rng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_string_seed_is_stable(self):
        a = deterministic_rng("circuit-x")
        b = deterministic_rng("circuit-x")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_string_seeds_distinguish_names(self):
        a = deterministic_rng("circuit-x")
        b = deterministic_rng("circuit-y")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]


class TestDerivedSeeds:
    def test_derivation_is_stable(self):
        assert derive_seed(0, "adder", "s0") == derive_seed(0, "adder", "s0")

    def test_tokens_and_base_matter(self):
        base = derive_seed(0, "adder", "s0")
        assert derive_seed(1, "adder", "s0") != base
        assert derive_seed(0, "adder", "s1") != base
        assert derive_seed(0, "mult", "s0") != base

    def test_token_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_seeded_job_scopes_the_rng(self):
        outside = job_rng().random()
        with seeded_job(derive_seed(0, "c", "o")) as rng:
            inside_first = job_rng().random()
            assert job_rng() is rng
        with seeded_job(derive_seed(0, "c", "o")):
            assert job_rng().random() == inside_first
        # Outside any job the default stream is restored.
        assert job_rng().random() == outside

    def test_seeded_job_nesting_restores_parent(self):
        with seeded_job(1) as outer:
            with seeded_job(2) as inner:
                assert job_rng() is inner
            assert job_rng() is outer
