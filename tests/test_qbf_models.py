"""Tests for the QBF model building blocks (fN / fT constraints, matrix)."""

from itertools import product

import pytest

from repro.aig.function import BooleanFunction
from repro.core.qbf_models import (
    ControlVariables,
    add_balancedness_target,
    add_combined_target,
    add_disjointness_target,
    add_nontrivial_constraint,
    add_target_constraint,
    build_matrix_function,
    maximum_bound,
)
from repro.errors import DecompositionError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver


def _accepted_partitions(names, build):
    """Enumerate (XA, XB, XC) assignments accepted by the constraint CNF."""
    cnf = CNF()
    controls = ControlVariables.allocate(cnf, names)
    build(cnf, controls)
    accepted = []
    for assignment in product("ABC", repeat=len(names)):
        assumptions = []
        for name, kind in zip(names, assignment):
            assumptions.append(controls.alpha[name] if kind == "A" else -controls.alpha[name])
            assumptions.append(controls.beta[name] if kind == "B" else -controls.beta[name])
        solver = Solver()
        solver.add_cnf(cnf)
        if solver.solve(assumptions=assumptions).status:
            accepted.append(assignment)
    return accepted


class TestNontrivialConstraint:
    def test_requires_both_blocks_nonempty(self):
        names = ["x", "y", "z"]
        accepted = _accepted_partitions(names, add_nontrivial_constraint)
        assert accepted
        for assignment in accepted:
            assert "A" in assignment and "B" in assignment

    def test_rejects_all_shared(self):
        names = ["x", "y"]
        accepted = _accepted_partitions(names, add_nontrivial_constraint)
        assert ("C", "C") not in accepted
        assert ("A", "B") in accepted and ("B", "A") in accepted


class TestDisjointnessTarget:
    @pytest.mark.parametrize("bound", [0, 1, 2])
    def test_bounds_shared_count(self, bound):
        names = ["a", "b", "c", "d"]

        def build(cnf, controls):
            add_nontrivial_constraint(cnf, controls)
            add_disjointness_target(cnf, controls, bound)

        for assignment in _accepted_partitions(names, build):
            assert assignment.count("C") <= bound

    def test_accepts_every_partition_within_bound(self):
        names = ["a", "b", "c"]

        def build(cnf, controls):
            add_nontrivial_constraint(cnf, controls)
            add_disjointness_target(cnf, controls, 1)

        accepted = set(_accepted_partitions(names, build))
        for assignment in product("ABC", repeat=3):
            nontrivial = "A" in assignment and "B" in assignment
            within = assignment.count("C") <= 1
            assert ((assignment in accepted)) == (nontrivial and within)

    def test_negative_bound_rejected(self):
        cnf = CNF()
        controls = ControlVariables.allocate(cnf, ["a", "b"])
        with pytest.raises(DecompositionError):
            add_disjointness_target(cnf, controls, -1)


class TestBalancednessTarget:
    @pytest.mark.parametrize("bound", [0, 1, 2])
    def test_bounds_imbalance_and_breaks_symmetry(self, bound):
        names = ["a", "b", "c", "d"]

        def build(cnf, controls):
            add_nontrivial_constraint(cnf, controls)
            add_balancedness_target(cnf, controls, bound)

        accepted = _accepted_partitions(names, build)
        assert accepted
        for assignment in accepted:
            count_a = assignment.count("A")
            count_b = assignment.count("B")
            assert count_a >= count_b
            assert count_a - count_b <= bound

    def test_exactness(self):
        names = ["a", "b", "c"]

        def build(cnf, controls):
            add_nontrivial_constraint(cnf, controls)
            add_balancedness_target(cnf, controls, 1)

        accepted = set(_accepted_partitions(names, build))
        for assignment in product("ABC", repeat=3):
            count_a, count_b = assignment.count("A"), assignment.count("B")
            expected = (
                count_a >= 1
                and count_b >= 1
                and count_a >= count_b
                and count_a - count_b <= 1
            )
            assert (assignment in accepted) == expected


class TestCombinedTarget:
    @pytest.mark.parametrize("bound", [0, 1, 2])
    def test_bounds_sum(self, bound):
        names = ["a", "b", "c", "d"]

        def build(cnf, controls):
            add_nontrivial_constraint(cnf, controls)
            add_combined_target(cnf, controls, bound)

        accepted = _accepted_partitions(names, build)
        for assignment in accepted:
            count_a = assignment.count("A")
            count_b = assignment.count("B")
            count_c = assignment.count("C")
            assert count_a >= count_b
            assert count_c + count_a - count_b <= bound

    def test_exactness_small(self):
        names = ["a", "b", "c"]

        def build(cnf, controls):
            add_nontrivial_constraint(cnf, controls)
            add_combined_target(cnf, controls, 1)

        accepted = set(_accepted_partitions(names, build))
        for assignment in product("ABC", repeat=3):
            count_a, count_b = assignment.count("A"), assignment.count("B")
            count_c = assignment.count("C")
            expected = (
                count_a >= 1
                and count_b >= 1
                and count_a >= count_b
                and count_c + count_a - count_b <= 1
            )
            assert (assignment in accepted) == expected


class TestDispatchAndBounds:
    def test_add_target_constraint_dispatch(self):
        for target in ("disjointness", "balancedness", "combined"):
            cnf = CNF()
            controls = ControlVariables.allocate(cnf, ["a", "b"])
            add_target_constraint(cnf, controls, target, 0)
        with pytest.raises(DecompositionError):
            add_target_constraint(CNF(), ControlVariables.allocate(CNF(), ["a"]), "foo", 0)

    def test_maximum_bound(self):
        assert maximum_bound("disjointness", 5) == 3
        assert maximum_bound("balancedness", 5) == 3
        assert maximum_bound("combined", 5) == 6
        with pytest.raises(DecompositionError):
            maximum_bound("disjointness", 1)
        with pytest.raises(DecompositionError):
            maximum_bound("weird", 5)


class TestMatrixFunction:
    def test_matrix_inputs_and_names(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        matrix, exist_names, universal_names = build_matrix_function(f, "or")
        assert len(exist_names) == 4
        assert len(universal_names) == 6
        assert set(matrix.input_names) == set(exist_names) | set(universal_names)

    def test_matrix_xor_has_fourth_copy(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        matrix, _, universal_names = build_matrix_function(f, "xor")
        assert len(universal_names) == 8

    def test_matrix_semantics_on_or_case(self):
        # For the OR check, the matrix is true iff the check formula is
        # falsified; with all equalities enforced (alpha = beta = 0) the check
        # formula requires f AND NOT f on identical inputs, so the matrix must
        # be true whenever the three copies carry identical input values.
        f = BooleanFunction.from_truth_table(0b1000, 2)  # AND
        matrix, exist_names, universal_names = build_matrix_function(f, "or")
        names = f.input_names
        values = {name: False for name in exist_names}
        for x0 in (False, True):
            for x1 in (False, True):
                assignment = dict(values)
                for copy in ("x", "xp", "xpp"):
                    assignment[f"{copy}:{names[0]}"] = x0
                    assignment[f"{copy}:{names[1]}"] = x1
                assert matrix.evaluate(assignment) is True
