"""Tests for the sharded service tier: ring, router, failover.

The contracts under test:

* the routing key is a pure function of circuit structure, and the hash
  ring is a pure function of the shard address *set* — two routers with
  the same shards (in any order) route every request identically;
* a report served through the router is **fingerprint-identical** to the
  same request run through a local ``Session``, regardless of which
  shard served it (acceptance criterion);
* the same circuit always lands on the same shard (the property the
  per-shard warm cone caches rely on);
* killing a shard mid-request fails the work over to the next shard on
  the ring and the client still gets the identical report;
* cancel / stats / protocol errors relay through the router with ids
  translated, and a returning shard is re-admitted by the health probe.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import DecompositionRequest, EngineSpec, Session, default_registry
from repro.circuits.generators import (
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.result import BiDecResult
from repro.core.spec import ENGINE_STEP_MG
from repro.errors import ServiceError
from repro.service import ReproRouter, RouterThread, ServiceClient, ServiceThread
from repro.service.protocol import encode_request
from repro.service.router import RING_REPLICAS, build_ring, request_route_key


def request_for(aig, engines=(ENGINE_STEP_MG,), **kwargs):
    return DecompositionRequest(
        circuit=aig, operator="or", engines=tuple(engines), **kwargs
    )


@pytest.fixture
def shard_pair():
    """Two daemon shards on ephemeral TCP ports, thread backend (plug-in
    engines registered in this process stay visible to the workers)."""
    a = ServiceThread("127.0.0.1:0", jobs=2, backend="thread").start()
    b = ServiceThread("127.0.0.1:0", jobs=2, backend="thread").start()
    try:
        yield (a, b)
    finally:
        a.stop()
        b.stop()


@pytest.fixture
def front(shard_pair):
    """A router over both shards, probing fast enough for tests."""
    addresses = [shard.address for shard in shard_pair]
    with RouterThread("127.0.0.1:0", addresses, probe_interval=0.2) as router:
        yield router


def wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRouting:
    def test_route_key_is_a_pure_function_of_circuit_structure(self):
        key_a, _ = request_route_key(encode_request(request_for(mux_tree(3))))
        key_b, _ = request_route_key(encode_request(request_for(mux_tree(3))))
        assert key_a == key_b  # two independent builds, one key
        assert key_a.startswith("cone:")
        # A renamed copy of the same structure routes identically: the
        # key hashes cones, never names or construction history.
        renamed = mux_tree(3)
        renamed.name = "totally-different-name"
        key_c, name = request_route_key(encode_request(request_for(renamed)))
        assert key_c == key_a
        assert name == "totally-different-name"
        # Different structure, different key (with 128-bit digests a
        # collision here would be a bug, not bad luck).
        key_d, _ = request_route_key(encode_request(request_for(parity_tree(3))))
        assert key_d != key_a

    def test_ring_is_independent_of_shard_list_order(self):
        shards = ["10.0.0.1:7000", "10.0.0.2:7000", "/var/run/shard.sock"]
        assert build_ring(shards) == build_ring(list(reversed(shards)))
        assert len(build_ring(shards)) == len(shards) * RING_REPLICAS

    def test_router_rejects_empty_and_duplicate_shard_lists(self):
        with pytest.raises(ServiceError, match="at least one shard"):
            ReproRouter([])
        with pytest.raises(ServiceError, match="duplicate shard"):
            ReproRouter(["a:1", "a:1"])

    def test_same_circuit_always_lands_on_the_same_shard(self, shard_pair, front):
        request = request_for(ripple_carry_adder(2))
        with ServiceClient(front.address) as client:
            for _ in range(3):
                client.run(request)
            stats = client.stats()
        submitted = {
            address: detail.get("submitted", 0)
            for address, detail in stats["shards"].items()
        }
        assert sorted(submitted.values()) == [0, 3]
        # The ring agrees with where the work actually went.
        key, _ = request_route_key(encode_request(request))
        home = max(submitted, key=submitted.get)
        assert front.router.shard_for(key) == home


class TestRouterRoundTrip:
    def test_reports_fingerprint_identical_to_local_session(self, front):
        """Acceptance: router result == local Session result, bit for
        bit, regardless of which shard served it."""
        requests = [
            request_for(mux_tree(3)),
            request_for(ripple_carry_adder(2)),
            request_for(parity_tree(3)),
        ]
        with ServiceClient(front.address) as client:
            for request in requests:
                remote = client.run(request)
                local = Session().run(request)
                assert remote.fingerprint() == local.fingerprint()

    def test_stats_aggregates_shards_and_reports_router_counters(self, front):
        with ServiceClient(front.address) as client:
            client.run(request_for(mux_tree(2)))
            stats = client.stats()
        assert stats["router"]["shards_up"] == 2
        assert stats["router"]["routed"] >= 1
        assert stats["router"]["results"] >= 1
        assert len(stats["shards"]) == 2
        assert all(detail["up"] for detail in stats["shards"].values())
        # Numeric session counters aggregate across the fleet.
        assert stats["completed"] >= 1

    def test_cancel_relays_through_id_translation(self, front):
        release = threading.Event()

        def stalling(function, operator, *, options, deadline):
            release.wait(10)
            return BiDecResult(
                engine="TEST-RSTALL", operator=operator, decomposed=False
            )

        default_registry().register(EngineSpec("TEST-RSTALL", runner=stalling))
        try:
            with ServiceClient(front.address) as client:
                request_id = client.submit(
                    request_for(ripple_carry_adder(2), engines=("TEST-RSTALL",))
                )
                assert client.cancel(request_id) is True
                release.set()
                with pytest.raises(ServiceError, match="cancelled"):
                    client.wait(request_id)
                # The router took it in stride.
                assert client.ping()
        finally:
            release.set()
            default_registry().unregister("TEST-RSTALL")

    def test_cancel_of_foreign_id_rejected(self, front):
        with ServiceClient(front.address) as client:
            with pytest.raises(ServiceError, match="unknown request id"):
                client.cancel(424242)

    def test_protocol_errors_relay_with_connection_intact(self, front):
        with ServiceClient(front.address) as client:
            client._sock.sendall(b"{not json}\n")
            frame = client._read_frame()
            assert frame["type"] == "error"
            assert "malformed frame" in frame["error"]
            assert client.ping()


class TestFailover:
    def test_shard_death_fails_work_over_and_report_is_identical(
        self, shard_pair, front
    ):
        """Acceptance: kill the shard holding an in-flight request; the
        request completes on the survivor with the identical report."""
        release = threading.Event()

        def stalling(function, operator, *, options, deadline):
            release.wait(10)
            return BiDecResult(
                engine="TEST-FAIL-OVER", operator=operator, decomposed=False
            )

        default_registry().register(EngineSpec("TEST-FAIL-OVER", runner=stalling))
        try:
            request = request_for(
                ripple_carry_adder(2), engines=("TEST-FAIL-OVER",)
            )
            with ServiceClient(front.address) as client:
                request_id = client.submit(request)
                shards = {shard.address: shard for shard in shard_pair}
                assert wait_until(
                    lambda: any(
                        shard.service.session.stats()["submitted"] >= 1
                        for shard in shard_pair
                    )
                )
                victim = next(
                    address
                    for address, shard in shards.items()
                    if shard.service.session.stats()["submitted"] >= 1
                )
                # stop() drains the victim: its executor joins the
                # stalled worker, so release the stall shortly after.
                threading.Timer(0.7, release.set).start()
                shards[victim].stop()
                report = client.wait(request_id)
                stats = client.stats()
            assert stats["router"]["failovers"] >= 1
            assert stats["router"]["shards_down"] == 1
            local = Session().run(request)
            assert report.fingerprint() == local.fingerprint()
        finally:
            release.set()
            default_registry().unregister("TEST-FAIL-OVER")

    def test_unreachable_shard_tolerated_and_probe_readmits(self, tmp_path):
        """One shard down at start is fine; the health probe re-admits
        it once it comes back on the same address."""
        shard_path = str(tmp_path / "shard.sock")
        survivor = ServiceThread("127.0.0.1:0", jobs=1, backend="thread").start()
        try:
            with RouterThread(
                "127.0.0.1:0",
                [shard_path, survivor.address],
                probe_interval=0.1,
            ) as front:
                with ServiceClient(front.address) as client:
                    # Work still flows through the one live shard.
                    report = client.run(request_for(mux_tree(2)))
                    assert client.stats()["router"]["shards_up"] == 1
                    # The missing shard comes up; the probe re-dials it.
                    late = ServiceThread(
                        shard_path, jobs=1, backend="thread"
                    ).start()
                    try:
                        assert wait_until(
                            lambda: client.stats()["router"]["shards_up"] == 2
                        )
                    finally:
                        late.stop()
                assert len(report.outputs) == 1
        finally:
            survivor.stop()

    def test_router_with_no_reachable_shard_refuses_to_start(self, tmp_path):
        with pytest.raises(ServiceError, match="none of the configured shards"):
            RouterThread(
                "127.0.0.1:0", [str(tmp_path / "nowhere.sock")]
            ).start()


class TestRouterObservability:
    def test_stats_with_a_shard_down_mid_scrape_never_hangs(
        self, shard_pair, front
    ):
        """A shard dying between scrapes costs the client that shard's
        numbers only: the frame still arrives, the survivor's counters
        aggregate, and the victim is reported ``{"up": False}``."""
        with ServiceClient(front.address) as client:
            client.run(request_for(mux_tree(2)))
            first = client.stats()
            victim = min(
                first["shards"],
                key=lambda address: first["shards"][address].get("submitted", 0),
            )
            survivor = next(a for a in first["shards"] if a != victim)
            shards = {shard.address: shard for shard in shard_pair}
            shards[victim].stop()
            stats = client.stats()
        assert stats["shards"][victim] == {"up": False}
        assert stats["shards"][survivor]["up"] is True
        assert stats["router"]["shards_down"] == 1
        assert stats["router"]["shards_up"] == 1
        # The survivor's session counters still aggregate.
        assert stats["completed"] >= 1
        assert stats["stats_version"] == 2

    def test_stats_obs_rollup_merges_router_and_shard_series(self, front):
        with ServiceClient(front.address) as client:
            client.run(request_for(mux_tree(2)))
            stats = client.stats()
        obs = stats["obs"]
        # The router's own counters ride in the same snapshot namespace.
        assert obs["counters"]["repro_router_routed_total"]["values"][""] >= 1
        assert obs["gauges"]["repro_router_shards_up"]["values"][""] == 2
        # Shard request spans merged bucket-for-bucket: the shared bounds
        # mean nothing lands in merge_skipped.
        latency = obs["histograms"]["repro_request_latency_seconds"]
        assert latency["series"][""]["count"] >= 1
        assert "repro_request_latency_seconds" not in obs.get(
            "merge_skipped", []
        )
        # Per-client accounts are namespaced by shard address so the
        # fleet view never conflates two shards' client c1.
        assert stats["clients"]
        for name, entry in stats["clients"].items():
            assert "/" in name
            assert entry["submitted"] >= 0

    def test_shard_readmitted_by_probe_reappears_in_stats(self, tmp_path):
        """After the probe re-admits a returned shard, the very next
        scrape carries its numbers again."""
        shard_path = str(tmp_path / "shard.sock")
        survivor = ServiceThread("127.0.0.1:0", jobs=1, backend="thread").start()
        try:
            with RouterThread(
                "127.0.0.1:0",
                [shard_path, survivor.address],
                probe_interval=0.1,
            ) as front:
                with ServiceClient(front.address) as client:
                    client.run(request_for(mux_tree(2)))
                    down = client.stats()
                    assert down["shards"][shard_path] == {"up": False}
                    assert down["router"]["shards_down"] == 1
                    late = ServiceThread(
                        shard_path, jobs=1, backend="thread"
                    ).start()
                    try:
                        assert wait_until(
                            lambda: client.stats()["router"]["shards_up"] == 2
                        )
                        back = client.stats()
                        entry = back["shards"][shard_path]
                        assert entry["up"] is True
                        assert "submitted" in entry
                        assert back["router"]["shards_down"] == 0
                    finally:
                        late.stop()
        finally:
            survivor.stop()


class TestRouteCli:
    def test_route_flag_validation(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["route", "--listen", "r.sock", "--shard", "s.sock", "--retries", "0"]
            )
            == 1
        )
        assert "--retries" in capsys.readouterr().err
        assert (
            main(
                [
                    "route",
                    "--listen",
                    "r.sock",
                    "--shard",
                    "s.sock",
                    "--probe-interval",
                    "0",
                ]
            )
            == 1
        )
        assert "--probe-interval" in capsys.readouterr().err

    def test_client_cli_through_router_matches_local_decompose(
        self, front, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.io.blif import write_blif

        path = str(tmp_path / "rca2.blif")
        write_blif(ripple_carry_adder(2), path)
        assert (
            main(
                [
                    "client",
                    path,
                    "--socket",
                    front.address,
                    "--engine",
                    "STEP-MG",
                    "--fingerprint",
                ]
            )
            == 0
        )
        routed_out = capsys.readouterr().out
        assert main(["decompose", path, "--engine", "STEP-MG", "--fingerprint"]) == 0
        local_out = capsys.readouterr().out
        routed_fp = [
            line
            for line in routed_out.splitlines()
            if line.startswith("report fingerprint")
        ]
        local_fp = [
            line
            for line in local_out.splitlines()
            if line.startswith("report fingerprint")
        ]
        assert routed_fp == local_fp != []
