"""Property-based differential tests: engines vs. truth-table oracles.

Random small AIGs (from :mod:`repro.circuits.generators`) are decomposed
with the heuristic, core-guided, QBF and BDD engines; every claimed
decomposition is cross-checked against brute-force truth-table simulation,
independently of the SAT/QBF machinery under test:

* ``fA <op> fB`` must equal ``f`` (recombination check),
* the claimed partition must pass the reference decomposability predicate
  (:mod:`tests.reference`),
* proven optima must match the brute-force optimum of the metric.
"""

import pytest

from tests.reference import best_metric, decomposable, evaluate_table
from repro.aig.function import BooleanFunction
from repro.circuits.generators import random_aig, random_dnf
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.spec import (
    ENGINE_BDD,
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QD,
)

ENGINES = [ENGINE_LJH, ENGINE_STEP_MG, ENGINE_STEP_QD, ENGINE_BDD]
OPERATORS = ["or", "and", "xor"]


def random_functions():
    """A deterministic population of small random functions (2-6 inputs)."""
    functions = []
    for trial in range(6):
        aig = random_aig(5, 14, 2, seed=f"diff-aig-{trial}")
        for name, _ in aig.outputs:
            function = BooleanFunction.from_output(aig, name)
            if 2 <= function.num_inputs <= 6:
                functions.append((f"aig-{trial}-{name}", function))
    for trial in range(4):
        aig = random_dnf(5, 6, 3, seed=f"diff-dnf-{trial}")
        function = BooleanFunction.from_output(aig, "f")
        if function.num_inputs >= 2:
            functions.append((f"dnf-{trial}", function))
    return functions


FUNCTIONS = random_functions()


def positions_of(partition, function):
    """Map a named partition onto input positions of ``function``."""
    index = {name: pos for pos, name in enumerate(function.input_names)}
    xa = [index[name] for name in partition.xa]
    xb = [index[name] for name in partition.xb]
    return xa, xb


@pytest.fixture(scope="module")
def step():
    return BiDecomposer(EngineOptions(output_timeout=30.0))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("operator", OPERATORS)
def test_engines_agree_with_truth_table_oracle(step, engine, operator):
    checked = 0
    for label, function in FUNCTIONS:
        table = function.truth_table()
        result = step.decompose_function(function, operator, engine=engine)
        if not result.decomposed:
            continue
        checked += 1
        xa, xb = positions_of(result.partition, function)
        # The claimed partition must be decomposable per the reference
        # predicate (worked out directly on the truth table).
        assert decomposable(table, function.num_inputs, operator, xa, xb), (
            f"{engine}/{operator} on {label}: partition "
            f"{result.partition} rejected by the reference predicate"
        )
        # Recombination: fA <op> fB == f on every input pattern.
        combined = result.fa.combine(result.fb, operator)
        combined_table = combined._table_over(function.input_names)
        assert combined_table == table, (
            f"{engine}/{operator} on {label}: fA {operator} fB differs from f"
        )
    # The population always contains decomposable cases for every operator.
    assert checked > 0


def test_qbf_optimum_matches_brute_force(step):
    """STEP-QD's proven optima equal the brute-force disjointness optimum."""
    verified = 0
    for label, function in FUNCTIONS:
        if function.num_inputs > 5:
            continue
        table = function.truth_table()
        result = step.decompose_function(function, "or", engine=ENGINE_STEP_QD)
        if not result.decomposed or not result.optimum_proven:
            continue
        reference_best = best_metric(table, function.num_inputs, "or", "shared")
        assert reference_best is not None, f"{label}: oracle finds no partition"
        assert len(result.partition.xc) == reference_best, (
            f"{label}: STEP-QD proved |XC|={len(result.partition.xc)} optimal "
            f"but brute force finds {reference_best}"
        )
        verified += 1
    assert verified > 0


def test_nondecomposable_verdicts_are_sound(step):
    """When the exact engine denies a function, the oracle agrees.

    Every STEP-QD denial on the random population must be confirmed by
    exhaustive enumeration of all non-trivial partitions.
    """
    denials = 0
    for label, function in FUNCTIONS:
        if function.num_inputs > 4:
            continue
        table = function.truth_table()
        result = step.decompose_function(function, "or", engine=ENGINE_STEP_QD)
        if result.decomposed or result.timed_out:
            continue
        denials += 1
        assert best_metric(table, function.num_inputs, "or", "shared") is None, (
            f"{label}: STEP-QD found nothing but a decomposable partition exists"
        )
    # Denials may legitimately be rare; the loop above must at least run.
    assert len(FUNCTIONS) > 0


def test_batched_circuit_results_verify_against_simulation():
    """End-to-end: batched multi-output decomposition vs. direct evaluation."""
    aig = random_aig(6, 18, 3, seed="diff-batch")
    step = BiDecomposer(EngineOptions(jobs=1, dedup=True, output_timeout=30.0))
    report = step.decompose_circuit(aig, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD])
    for output in report.outputs:
        function = BooleanFunction.from_output(aig, output.output_name)
        table = function.truth_table()
        for engine, result in output.results.items():
            if not result.decomposed:
                continue
            combined = result.fa.combine(result.fb, "or")
            assert combined._table_over(function.input_names) == table
            xa, xb = positions_of(result.partition, function)
            for pattern in range(1 << function.num_inputs):
                # Spot-check the semantics of the oracle itself.
                assert evaluate_table(table, pattern) == bool(
                    (table >> pattern) & 1
                )
            assert decomposable(table, function.num_inputs, "or", xa, xb)
