"""Tests for the BLIF reader and writer."""

import pytest

from repro.aig.function import BooleanFunction
from repro.errors import ParseError
from repro.io.blif import aig_to_blif, parse_blif, read_blif, write_blif

SIMPLE_BLIF = """
.model example
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names a g
0 1
.end
"""


class TestParsing:
    def test_basic_structure(self):
        aig = parse_blif(SIMPLE_BLIF)
        assert aig.name == "example"
        assert len(aig.inputs) == 3
        assert [name for name, _ in aig.outputs] == ["f", "g"]

    def test_semantics(self):
        aig = parse_blif(SIMPLE_BLIF)
        f = BooleanFunction.from_output(aig, "f")
        # f = (a AND b) OR c
        assert f.evaluate({"a": True, "b": True, "c": False}) is True
        assert f.evaluate({"a": True, "b": False, "c": False}) is False
        assert f.evaluate({"a": False, "b": False, "c": True}) is True
        g = BooleanFunction.from_output(aig, "g")
        assert g.evaluate({"a": False}) is True
        assert g.evaluate({"a": True}) is False

    def test_offset_cover(self):
        text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        aig = parse_blif(text)
        f = BooleanFunction.from_output(aig, "f")
        # Offset cover: f is 0 exactly when a AND b.
        assert f.truth_table() == 0b0111

    def test_constant_covers(self):
        text = ".model m\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n"
        aig = parse_blif(text)
        one = BooleanFunction.from_output(aig, "one")
        zero = BooleanFunction.from_output(aig, "zero")
        assert one.is_constant() is True
        assert zero.is_constant() is False

    def test_dont_care_pattern(self):
        text = ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n1-0 1\n.end\n"
        aig = parse_blif(text)
        f = BooleanFunction.from_output(aig, "f")
        assert f.evaluate({"a": True, "b": False, "c": False}) is True
        assert f.evaluate({"a": True, "b": True, "c": False}) is True
        assert f.evaluate({"a": True, "b": True, "c": True}) is False

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        aig = parse_blif(text)
        assert len(aig.inputs) == 2

    def test_comments_ignored(self):
        text = "# header\n.model m\n.inputs a\n.outputs f\n.names a f # buffer\n1 1\n.end\n"
        aig = parse_blif(text)
        assert len(aig.inputs) == 1

    def test_latch_parsing(self):
        text = (
            ".model seq\n.inputs d\n.outputs q_out\n"
            ".latch next q 0\n.names q q_out\n1 1\n.names d next\n1 1\n.end\n"
        )
        aig = parse_blif(text)
        assert len(aig.latches) == 1
        comb = aig.make_combinational()
        assert len(comb.latches) == 0

    def test_unsupported_construct_rejected(self):
        with pytest.raises(ParseError):
            parse_blif(".model m\n.inputs a\n.outputs f\n.subckt foo a=a f=f\n.end\n")

    def test_undriven_signal_rejected(self):
        with pytest.raises(ParseError):
            parse_blif(".model m\n.inputs a\n.outputs f\n.end\n")

    def test_duplicate_definition_rejected(self):
        text = ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_mixed_onset_offset_rejected(self):
        text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_malformed_cover_row_rejected(self):
        with pytest.raises(ParseError):
            parse_blif(".model m\n.inputs a\n.outputs f\n.names a f\n1x 1\n.end\n")

    def test_combinational_cycle_rejected(self):
        text = (
            ".model m\n.inputs a\n.outputs f\n"
            ".names g f\n1 1\n.names f g\n1 1\n.end\n"
        )
        with pytest.raises(ParseError):
            parse_blif(text)


class TestWriting:
    def test_roundtrip_semantics(self):
        original = parse_blif(SIMPLE_BLIF)
        text = aig_to_blif(original)
        reparsed = parse_blif(text)
        for name in ("f", "g"):
            f1 = BooleanFunction.from_output(original, name)
            f2 = BooleanFunction.from_output(reparsed, name)
            assert f1.semantically_equal(f2)

    def test_roundtrip_with_latches(self):
        text = (
            ".model seq\n.inputs d\n.outputs q_out\n"
            ".latch next q 1\n.names q q_out\n1 1\n.names d q t\n11 1\n.names t next\n1 1\n.end\n"
        )
        original = parse_blif(text)
        reparsed = parse_blif(aig_to_blif(original))
        assert len(reparsed.latches) == 1
        comb1 = original.make_combinational()
        comb2 = reparsed.make_combinational()
        for name in [n for n, _ in comb1.outputs]:
            f1 = BooleanFunction.from_output(comb1, name)
            f2 = BooleanFunction.from_output(comb2, name)
            assert f1.semantically_equal(f2)

    def test_file_roundtrip(self, tmp_path):
        original = parse_blif(SIMPLE_BLIF)
        path = tmp_path / "example.blif"
        write_blif(original, str(path))
        loaded = read_blif(str(path))
        assert BooleanFunction.from_output(loaded, "f").semantically_equal(
            BooleanFunction.from_output(original, "f")
        )

    def test_constant_output(self):
        from repro.aig.aig import AIG, TRUE_LIT

        aig = AIG("const")
        aig.add_input("a")
        aig.add_output("one", TRUE_LIT)
        reparsed = parse_blif(aig_to_blif(aig))
        assert BooleanFunction.from_output(reparsed, "one").is_constant() is True
