"""Cross-cutting property-based tests over the whole pipeline.

These tests tie the layers together on randomly generated functions: every
engine's output must verify against the original function, the QBF engines
must dominate the heuristics on their target metric, and the generic 2QBF
machinery must agree with the expansion solver on the paper's formula (4).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.function import BooleanFunction
from repro.core.checks import RelaxationChecker, check_decomposable
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.extract import extract_functions
from repro.core.ljh import ljh_find_partition
from repro.core.mus_partition import mus_find_partition
from repro.core.qbf_bidec import metric_value, qbf_decompose
from repro.core.verify import verify_decomposition

from tests.reference import all_nontrivial_partitions, best_metric, decomposable


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16 - 1),
    st.sampled_from(["or", "and", "xor"]),
)
def test_full_pipeline_on_random_functions(table, operator):
    """Engines + extraction + verification agree with brute force."""
    n = 4
    f = BooleanFunction.from_truth_table(table, n)
    step = BiDecomposer(EngineOptions(verify=True, output_timeout=30.0))
    exists = any(
        decomposable(table, n, operator, xa, xb)
        for xa, xb, _ in all_nontrivial_partitions(n)
    )
    for engine in ("STEP-MG", "STEP-QD"):
        result = step.decompose_function(f, operator, engine=engine)
        assert result.decomposed == exists
        if result.decomposed:
            names = f.input_names
            xa = [names.index(x) for x in result.partition.xa]
            xb = [names.index(x) for x in result.partition.xb]
            assert decomposable(table, n, operator, xa, xb)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_qbf_engines_dominate_heuristics(table):
    """STEP-QD/QB can never be beaten by LJH or STEP-MG on their metric."""
    n = 4
    operator = "or"
    f = BooleanFunction.from_truth_table(table, n)
    checker = RelaxationChecker(f, operator)
    ljh = ljh_find_partition(RelaxationChecker(f, operator))
    mg = mus_find_partition(RelaxationChecker(f, operator))
    if mg is None:
        return
    qd = qbf_decompose(checker, "disjointness", bootstrap=mg)
    qb = qbf_decompose(RelaxationChecker(f, operator), "balancedness", bootstrap=mg)
    assert qd.decomposed and qb.decomposed
    for heuristic in (ljh, mg):
        if heuristic is None:
            continue
        assert metric_value(qd.partition, "disjointness") <= metric_value(
            heuristic, "disjointness"
        )
        assert metric_value(qb.partition, "balancedness") <= metric_value(
            heuristic, "balancedness"
        )


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16 - 1),
    st.sampled_from(["or", "and", "xor"]),
)
def test_every_decomposable_partition_extracts_and_verifies(table, operator):
    """For a fixed partition: check == reference, and extraction verifies."""
    n = 4
    xa, xb = [0, 1], [2, 3]
    f = BooleanFunction.from_truth_table(table, n)
    names = f.input_names
    from repro.core.partition import VariablePartition

    partition = VariablePartition(tuple(names[:2]), tuple(names[2:]), ())
    expected = decomposable(table, n, operator, xa, xb)
    assert check_decomposable(f, operator, partition) == expected
    if expected:
        fa, fb = extract_functions(f, operator, partition)
        assert verify_decomposition(f, operator, fa, fb, partition)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_specialised_qbf_optimum_equals_brute_force(table):
    """The specialised CEGAR loop reaches the true disjointness optimum."""
    n = 4
    f = BooleanFunction.from_truth_table(table, n)
    expected = best_metric(table, n, "or", "shared")
    checker = RelaxationChecker(f, "or")
    result = qbf_decompose(checker, "disjointness", bootstrap=mus_find_partition(checker))
    if expected is None:
        assert not result.decomposed
    else:
        assert result.decomposed and result.optimum_proven
        assert metric_value(result.partition, "disjointness") == expected
