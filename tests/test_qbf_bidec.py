"""Tests for the QBF engines STEP-QD / STEP-QB / STEP-QDB.

The central property: on functions small enough for brute force, the QBF
engines must return partitions achieving the *exact optimum* of their target
metric (disjointness for STEP-QD, balancedness for STEP-QB, the combined sum
for STEP-QDB) over all non-trivial decomposable partitions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.function import BooleanFunction
from repro.circuits.generators import decomposable_by_construction, parity_tree
from repro.core import qbf_bidec
from repro.core.checks import RelaxationChecker, check_decomposable
from repro.core.mus_partition import mus_find_partition
from repro.core.qbf_bidec import (
    GenericQbfPartitionSolver,
    QbfPartitionSolver,
    metric_value,
    qbf_decompose,
    qbf_decompose_all_targets,
)
from repro.core.spec import ENGINE_STEP_QB, ENGINE_STEP_QD, ENGINE_STEP_QDB
from repro.errors import DecompositionError
from repro.utils.timer import Deadline

from tests.reference import best_metric

TARGET_TO_METRIC = {
    "disjointness": "shared",
    "balancedness": "imbalance",
    "combined": "combined",
}


def _run_engine(f, operator, target, backend="specialised", strategy="auto"):
    checker = RelaxationChecker(f, operator)
    bootstrap = mus_find_partition(checker)
    return qbf_decompose(
        checker,
        target,
        bootstrap=bootstrap,
        strategy=strategy,
        per_call_timeout=10.0,
        deadline=Deadline(60.0),
        backend=backend,
    )


class TestBoundQueries:
    def test_query_true_and_false_bounds(self):
        aig, xa, xb, xc = decomposable_by_construction("or", 2, 2, 1, seed=7)
        f = BooleanFunction.from_output(aig, "f")
        checker = RelaxationChecker(f, "or")
        solver = QbfPartitionSolver(checker, "disjointness")
        table, n = f.truth_table(), f.num_inputs
        optimum = best_metric(table, n, "or", "shared")
        assert optimum is not None
        feasible = solver.query(optimum, deadline=Deadline(30.0))
        assert feasible.status is True
        assert feasible.partition is not None
        assert metric_value(feasible.partition, "disjointness") <= optimum
        if optimum > 0:
            infeasible = solver.query(optimum - 1, deadline=Deadline(30.0))
            assert infeasible.status is False

    def test_returned_partition_is_decomposable(self):
        aig, *_ = decomposable_by_construction("or", 2, 2, 1, seed=9)
        f = BooleanFunction.from_output(aig, "f")
        checker = RelaxationChecker(f, "or")
        solver = QbfPartitionSolver(checker, "balancedness")
        answer = solver.query(1, deadline=Deadline(30.0))
        if answer.status:
            assert check_decomposable(f, "or", answer.partition)

    def test_blocking_clauses_shared_across_bounds(self):
        f = BooleanFunction.from_output(parity_tree(4), "p")
        checker = RelaxationChecker(f, "or")
        solver = QbfPartitionSolver(checker, "disjointness")
        first = solver.query(2, deadline=Deadline(30.0))
        refinements_after_first = solver.stats.refinements
        solver.query(2, deadline=Deadline(30.0))
        # The second identical query reuses the learned blocking clauses, so
        # it cannot need more refinements than the first one did.
        assert solver.stats.refinements <= 2 * max(refinements_after_first, 1)
        assert first.status in (True, False)

    def test_unknown_target_rejected(self):
        f = BooleanFunction.from_truth_table(0b1000, 2)
        checker = RelaxationChecker(f, "or")
        with pytest.raises(DecompositionError):
            QbfPartitionSolver(checker, "area")


class TestEngineResults:
    @pytest.mark.parametrize(
        "target,engine_name",
        [
            ("disjointness", ENGINE_STEP_QD),
            ("balancedness", ENGINE_STEP_QB),
            ("combined", ENGINE_STEP_QDB),
        ],
    )
    def test_engine_names_and_validity(self, target, engine_name):
        aig, *_ = decomposable_by_construction("or", 2, 2, 1, seed=37)
        f = BooleanFunction.from_output(aig, "f")
        result = _run_engine(f, "or", target)
        assert result.engine == engine_name
        assert result.decomposed
        assert check_decomposable(f, "or", result.partition)

    def test_not_decomposable_function(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)  # XOR
        result = _run_engine(f, "or", "disjointness")
        assert not result.decomposed

    def test_never_worse_than_bootstrap(self):
        aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=3)
        f = BooleanFunction.from_output(aig, "f")
        checker = RelaxationChecker(f, "or")
        bootstrap = mus_find_partition(checker)
        assert bootstrap is not None
        result = qbf_decompose(
            checker, "disjointness", bootstrap=bootstrap, deadline=Deadline(60.0)
        )
        assert result.decomposed
        assert metric_value(result.partition, "disjointness") <= metric_value(
            bootstrap, "disjointness"
        )

    def test_all_targets_helper(self):
        aig, *_ = decomposable_by_construction("or", 2, 2, 1, seed=12)
        f = BooleanFunction.from_output(aig, "f")
        checker = RelaxationChecker(f, "or")
        results = qbf_decompose_all_targets(checker, deadline=Deadline(60.0))
        assert set(results) == {ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB}
        assert all(r.decomposed for r in results.values())

    def test_invalid_strategy_rejected(self):
        f = BooleanFunction.from_truth_table(0b1000, 2)
        checker = RelaxationChecker(f, "or")
        with pytest.raises(DecompositionError):
            qbf_decompose(checker, "disjointness", strategy="random-walk")

    def test_invalid_backend_rejected(self):
        f = BooleanFunction.from_truth_table(0b1000, 2)
        checker = RelaxationChecker(f, "or")
        with pytest.raises(DecompositionError):
            qbf_decompose(checker, "disjointness", backend="oracle")


class TestOptimality:
    @pytest.mark.parametrize("strategy", ["auto", "mi", "md", "bin"])
    def test_strategies_reach_the_same_optimum(self, strategy):
        aig, *_ = decomposable_by_construction("or", 2, 2, 1, seed=55)
        f = BooleanFunction.from_output(aig, "f")
        table, n = f.truth_table(), f.num_inputs
        expected = best_metric(table, n, "or", "shared")
        result = _run_engine(f, "or", "disjointness", strategy=strategy)
        assert result.decomposed
        assert result.optimum_proven
        assert metric_value(result.partition, "disjointness") == expected

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.sampled_from(["or", "and", "xor"]),
        st.sampled_from(["disjointness", "balancedness", "combined"]),
    )
    def test_optimum_matches_brute_force(self, table, operator, target):
        n = 4
        expected = best_metric(table, n, operator, TARGET_TO_METRIC[target])
        f = BooleanFunction.from_truth_table(table, n)
        result = _run_engine(f, operator, target)
        if expected is None:
            assert not result.decomposed
            return
        assert result.decomposed
        assert result.optimum_proven
        assert metric_value(result.partition, target) == expected
        names = f.input_names
        assert check_decomposable(f, operator, result.partition)

    def test_generic_backend_agrees_with_specialised(self):
        aig, *_ = decomposable_by_construction("or", 2, 2, 0, seed=77)
        f = BooleanFunction.from_output(aig, "f")
        specialised = _run_engine(f, "or", "disjointness", backend="specialised")
        generic = _run_engine(f, "or", "disjointness", backend="generic")
        assert specialised.decomposed == generic.decomposed
        if specialised.decomposed:
            assert metric_value(specialised.partition, "disjointness") == metric_value(
                generic.partition, "disjointness"
            )
