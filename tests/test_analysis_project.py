"""Tests for the project phase of ``step lint``.

Covers the whole-program tier added on top of the per-module rule
engine: call-graph construction (``analysis/callgraph.py``), the
summary-based determinism taint flow (``DET-FLOW-*``), wire-protocol
conformance (``PROTO-*``), and the CLI surface that exposes them
(``--select`` / ``--severity`` / ``--no-project`` / ``BASELINE-STALE``).

Fixture packages mirror the real layout (``core/``, ``aig/``,
``service/`` …) because both rule families scope by module path.
"""

from __future__ import annotations

import json
import os
import textwrap

from repro.analysis import (
    Project,
    ProtocolModel,
    analyze_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import ModuleUnderAnalysis
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_module(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def fired(tmp_path, modules, **kwargs):
    """Write ``{relpath: source}`` and return the fired rule ids."""
    for relpath, source in modules.items():
        write_module(tmp_path, relpath, source)
    report = analyze_paths([str(tmp_path)], **kwargs)
    return [finding.rule for finding in report.findings]


def build_project(modules):
    """An in-memory Project from ``{module_path: source}``."""
    return Project(
        [
            ModuleUnderAnalysis(path, path, textwrap.dedent(source))
            for path, source in modules.items()
        ]
    )


class TestCallGraph:
    def test_local_and_imported_resolution(self):
        project = build_project(
            {
                "core/helpers.py": """
                def make():
                    return 1
                """,
                "core/user.py": """
                from core.helpers import make

                def local():
                    return 2

                def run():
                    return make() + local()
                """,
            }
        )
        index = project.index
        caller = index.functions[("core/user.py", "run")]
        import ast

        calls = [
            node
            for node in ast.walk(caller.node)
            if isinstance(node, ast.Call)
        ]
        resolved = {
            index.resolve_call(caller, node).qualname
            for node in calls
            if index.resolve_call(caller, node) is not None
        }
        assert resolved == {
            "core/helpers.py::make",
            "core/user.py::local",
        }

    def test_module_import_and_self_method(self):
        project = build_project(
            {
                "core/helpers.py": """
                def make():
                    return 1
                """,
                "core/user.py": """
                import core.helpers

                class Engine:
                    def step(self):
                        return self.step_once() + core.helpers.make()

                    def step_once(self):
                        return 0
                """,
            }
        )
        index = project.index
        caller = index.functions[("core/user.py", "Engine.step")]
        import ast

        resolved = set()
        for node in ast.walk(caller.node):
            if isinstance(node, ast.Call):
                info = index.resolve_call(caller, node)
                if info is not None:
                    resolved.add(info.qualname)
        assert resolved == {
            "core/user.py::Engine.step_once",
            "core/helpers.py::make",
        }

    def test_external_calls_resolve_to_none(self):
        project = build_project(
            {
                "core/user.py": """
                import os

                def run():
                    return os.getpid()
                """,
            }
        )
        index = project.index
        caller = index.functions[("core/user.py", "run")]
        import ast

        call = next(
            node
            for node in ast.walk(caller.node)
            if isinstance(node, ast.Call)
        )
        assert index.resolve_call(caller, call) is None


class TestTaintFlowFires:
    def test_direct_set_into_fingerprint(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "aig/fp.py": """
                from aig.sig import canonical_cone_signature

                def fingerprint(nodes):
                    pending = {n for n in nodes}
                    return canonical_cone_signature(list(pending))
                """,
            },
        )
        assert "DET-FLOW-ORDER" in rules

    def test_multi_hop_cross_module_chain(self, tmp_path):
        # The flagship case: no single module sees both source and sink.
        rules = fired(
            tmp_path,
            {
                "core/helpers.py": """
                def support(nodes):
                    return {n for n in nodes}
                """,
                "core/mid.py": """
                from core.helpers import support

                def freeze(nodes):
                    return list(support(nodes))
                """,
                "aig/fp.py": """
                from core.mid import freeze
                from aig.sig import canonical_cone_signature

                def fingerprint(nodes):
                    return canonical_cone_signature(freeze(nodes))
                """,
            },
        )
        assert "DET-FLOW-ORDER" in rules

    def test_cross_module_set_return(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "core/helpers.py": """
                def support():
                    return {1, 2, 3}
                """,
                "core/fp.py": """
                import hashlib

                from core.helpers import support

                def digest():
                    return hashlib.sha256(str(list(support())).encode())
                """,
            },
        )
        assert "DET-FLOW-ORDER" in rules

    def test_recursion_reaches_fixpoint(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "core/rec.py": """
                import json

                def walk(frontier, depth):
                    if depth == 0:
                        return json.dumps(list(frontier))
                    return walk(set(frontier), depth - 1)

                def top():
                    return walk({1, 2}, 3)
                """,
            },
        )
        assert "DET-FLOW-ORDER" in rules

    def test_wallclock_into_wire_frame(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "service/x.py": """
                import time

                from service.protocol import encode_frame

                def stamp():
                    started = time.time()
                    return encode_frame({"started": started})
                """,
            },
        )
        assert "DET-FLOW-TIME" in rules

    def test_rng_into_hash(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "core/x.py": """
                import hashlib
                import random

                def digest():
                    salt = random.random()
                    return hashlib.sha256(str(salt).encode())
                """,
            },
        )
        assert "DET-FLOW-RNG" in rules

    def test_id_into_snapshot(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "core/x.py": """
                import json

                def snapshot(obj):
                    key = id(obj)
                    return json.dumps({"key": key})
                """,
            },
        )
        assert "DET-FLOW-ID" in rules

    def test_listdir_order_into_fingerprint(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "core/x.py": """
                import json
                import os

                def manifest(root):
                    names = os.listdir(root)
                    return json.dumps(names)
                """,
            },
        )
        assert "DET-FLOW-ORDER" in rules


class TestTaintFlowClean:
    def assert_no_flow(self, rules):
        assert not [r for r in rules if r.startswith("DET-FLOW-")]

    def test_sorted_launders_set_order(self, tmp_path):
        self.assert_no_flow(
            fired(
                tmp_path,
                {
                    "core/helpers.py": """
                    def support(nodes):
                        return {n for n in nodes}
                    """,
                    "aig/fp.py": """
                    from core.helpers import support
                    from aig.sig import canonical_cone_signature

                    def fingerprint(nodes):
                        return canonical_cone_signature(sorted(support(nodes)))
                    """,
                },
            )
        )

    def test_order_insensitive_reductions_are_clean(self, tmp_path):
        self.assert_no_flow(
            fired(
                tmp_path,
                {
                    "core/x.py": """
                    import json

                    def summary(nodes):
                        pending = {n for n in nodes}
                        return json.dumps([len(pending), min(pending)])
                    """,
                },
            )
        )

    def test_deterministic_data_is_clean(self, tmp_path):
        self.assert_no_flow(
            fired(
                tmp_path,
                {
                    "aig/fp.py": """
                    from aig.sig import canonical_cone_signature

                    def fingerprint(nodes):
                        return canonical_cone_signature(sorted(nodes))
                    """,
                },
            )
        )

    def test_out_of_scope_modules_are_not_reported(self, tmp_path):
        # sat/ is outside FLOW_SCOPE: analyzed (its summaries feed
        # in-scope callers) but never reported on directly.
        self.assert_no_flow(
            fired(
                tmp_path,
                {
                    "sat/x.py": """
                    import json

                    def snapshot():
                        return json.dumps(list({1, 2, 3}))
                    """,
                },
            )
        )


class TestProtoRules:
    def test_unknown_frame_type_fires(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "service/x.py": """
                PROTOCOL_VERSION = 1

                def build():
                    frame = {"type": "results", "v": PROTOCOL_VERSION}
                    return frame
                """,
            },
        )
        assert "PROTO-UNKNOWN-TYPE" in rules

    def test_missing_field_fires_and_credits_subscripts(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "service/bad.py": """
                PROTOCOL_VERSION = 1

                def build(rid):
                    frame = {"type": "result", "v": PROTOCOL_VERSION}
                    return frame
                """,
                "service/good.py": """
                PROTOCOL_VERSION = 1

                def build(rid):
                    frame = {"type": "result", "v": PROTOCOL_VERSION}
                    frame["id"] = rid
                    frame["state"] = "done"
                    return frame
                """,
            },
        )
        missing = [r for r in rules if r == "PROTO-MISSING-FIELD"]
        assert missing == ["PROTO-MISSING-FIELD"]  # bad.py only

    def test_tag_helpers_credit_their_fields(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "service/x.py": """
                PROTOCOL_VERSION = 1

                class Client:
                    async def submit(self, req):
                        return await self._call({"type": "submit", "request": req})

                class Daemon:
                    async def reply(self, send, exc, tag):
                        await send(
                            self._tagged(
                                {
                                    "type": "error",
                                    "v": PROTOCOL_VERSION,
                                    "error": str(exc),
                                },
                                tag,
                            )
                        )
                """,
            },
        )
        assert "PROTO-MISSING-FIELD" not in rules

    def test_version_literal_fires_and_constant_is_clean(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "service/bad.py": """
                def build():
                    frame = {"type": "ping", "v": 1}
                    return frame
                """,
                "service/good.py": """
                from service.protocol import PROTOCOL_VERSION

                def build():
                    frame = {"type": "ping", "v": PROTOCOL_VERSION}
                    return frame
                """,
            },
        )
        drift = [r for r in rules if r == "PROTO-VERSION-DRIFT"]
        assert drift == ["PROTO-VERSION-DRIFT"]  # bad.py only

    def test_unknown_field_read_fires_on_frames_only(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "service/x.py": """
                def handle(frame, event):
                    bad = frame.get("requets")
                    fine = event.get("requets")
                    return bad, fine
                """,
            },
        )
        assert rules.count("PROTO-UNKNOWN-FIELD") == 1

    def test_incomplete_dispatch_fires_else_is_clean(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "service/bad.py": """
                from service.protocol import check_client_frame

                def handle(frame):
                    kind = check_client_frame(frame)
                    if kind == "ping":
                        return "pong"
                    elif kind == "stats":
                        return "stats"
                """,
                "service/good.py": """
                from service.protocol import check_client_frame

                def handle(frame):
                    kind = check_client_frame(frame)
                    if kind == "ping":
                        return "pong"
                    else:
                        return "unsupported"
                """,
            },
        )
        dispatch = [r for r in rules if r == "PROTO-DISPATCH"]
        assert dispatch == ["PROTO-DISPATCH"]  # bad.py only

    def test_model_constants_follow_the_analyzed_tree(self):
        project = build_project(
            {
                "service/protocol.py": """
                PROTOCOL_VERSION = 7
                CLIENT_FRAME_TYPES = ("submit", "cancel", "stats", "ping", "flush")
                """,
            }
        )
        model = ProtocolModel.from_project(project)
        assert model.version == 7
        assert "flush" in model.client_types
        assert "flush" in model.all_types

    def test_proto_rules_are_scoped_to_service(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "core/x.py": """
                def build():
                    frame = {"type": "results", "v": 1}
                    return frame
                """,
            },
        )
        assert not [r for r in rules if r.startswith("PROTO-")]


class TestEngineIntegration:
    FLOW_FIXTURE = {
        "core/helpers.py": """
        def support():
            return {1, 2, 3}
        """,
        "core/fp.py": """
        import json

        from core.helpers import support

        def snapshot():
            return json.dumps(list(support()))
        """,
    }

    def test_no_project_drops_project_findings(self, tmp_path):
        assert "DET-FLOW-ORDER" in fired(tmp_path, self.FLOW_FIXTURE)
        assert (
            fired(tmp_path, self.FLOW_FIXTURE, project=False) == []
        )

    def test_select_runs_only_named_rules(self, tmp_path):
        rules = fired(
            tmp_path, self.FLOW_FIXTURE, rules=["DET-WALLCLOCK"]
        )
        assert rules == []
        rules = fired(
            tmp_path, self.FLOW_FIXTURE, rules=["DET-FLOW-ORDER"]
        )
        assert rules == ["DET-FLOW-ORDER"]

    def test_severity_filter(self, tmp_path):
        assert (
            fired(tmp_path, self.FLOW_FIXTURE, severity="warning") == []
        )
        assert "DET-FLOW-ORDER" in fired(
            tmp_path, self.FLOW_FIXTURE, severity="error"
        )

    def test_inline_suppression_waives_project_finding(self, tmp_path):
        rules = fired(
            tmp_path,
            {
                "core/helpers.py": """
                def support():
                    return {1, 2, 3}
                """,
                "core/fp.py": """
                import json

                from core.helpers import support

                def snapshot():
                    return json.dumps(list(support()))  # repro: allow[DET-FLOW-ORDER] membership snapshot; consumer sorts before comparing
                """,
            },
        )
        assert "DET-FLOW-ORDER" not in rules

    def test_baseline_covers_project_finding(self, tmp_path):
        for relpath, source in self.FLOW_FIXTURE.items():
            write_module(tmp_path, relpath, source)
        report = analyze_paths([str(tmp_path)])
        flow = [f for f in report.findings if f.rule == "DET-FLOW-ORDER"]
        assert flow
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        clean = analyze_paths(
            [str(tmp_path)], baseline=load_baseline(str(baseline_path))
        )
        assert clean.findings == []

    def test_stale_baseline_entry_warns(self, tmp_path):
        write_module(tmp_path, "core/x.py", "x = 1\n")
        dirty = tmp_path / "dirty"
        write_module(
            dirty,
            "core/x.py",
            """
            for item in {1}:
                print(item)
            """,
        )
        baseline_path = tmp_path / "baseline.json"
        report = analyze_paths([str(dirty)])
        write_baseline(str(baseline_path), report.findings)
        stale = analyze_paths(
            [str(tmp_path / "core")],
            baseline=load_baseline(str(baseline_path)),
        )
        assert [f.rule for f in stale.findings] == ["BASELINE-STALE"]
        assert stale.findings[0].severity == "warning"
        assert not stale.blocking

    def test_stale_warning_suppressed_on_partial_runs(self, tmp_path):
        write_module(tmp_path, "core/x.py", "x = 1\n")
        dirty = tmp_path / "dirty"
        write_module(
            dirty,
            "core/x.py",
            """
            for item in {1}:
                print(item)
            """,
        )
        baseline_path = tmp_path / "baseline.json"
        report = analyze_paths([str(dirty)])
        write_baseline(str(baseline_path), report.findings)
        baseline = load_baseline(str(baseline_path))
        # A --select or --no-project run cannot judge staleness.
        assert (
            fired(
                tmp_path,
                {},
                baseline=baseline,
                rules=["DET-SET-ITER"],
            )
            == []
        )
        assert (
            fired(tmp_path, {}, baseline=baseline, project=False) == []
        )


class TestCliFilters:
    FIXTURE = """
    for item in {1, 2}:
        print(item)
    """

    def test_select_filters_findings(self, tmp_path, capsys):
        write_module(tmp_path, "core/x.py", self.FIXTURE)
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--no-baseline",
                    "--select",
                    "DET-SET-ITER",
                ]
            )
            == 1
        )
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--no-baseline",
                    "--select",
                    "DET-WALLCLOCK,DET-RNG",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_unknown_select_is_a_usage_error(self, tmp_path, capsys):
        write_module(tmp_path, "core/x.py", self.FIXTURE)
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--no-baseline",
                    "--select",
                    "DET-NOPE",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "DET-NOPE" in err and "--list-rules" in err

    def test_severity_filter_cli(self, tmp_path, capsys):
        write_module(tmp_path, "core/x.py", self.FIXTURE)
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--no-baseline",
                    "--severity",
                    "warning",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--no-baseline",
                    "--severity",
                    "error",
                ]
            )
            == 1
        )
        capsys.readouterr()

    def test_write_baseline_rejects_filters(self, tmp_path, capsys):
        write_module(tmp_path, "core/x.py", self.FIXTURE)
        for flags in (
            ["--select", "DET-SET-ITER"],
            ["--severity", "error"],
            ["--no-project"],
        ):
            assert (
                main(
                    [
                        "lint",
                        str(tmp_path),
                        "--write-baseline",
                        "--baseline",
                        str(tmp_path / "baseline.json"),
                    ]
                    + flags
                )
                == 2
            )
        capsys.readouterr()

    def test_write_baseline_drops_stale_entries(self, tmp_path, capsys):
        write_module(tmp_path, "core/x.py", self.FIXTURE)
        baseline_path = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--write-baseline",
                    "--baseline",
                    str(baseline_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # The finding goes away; its baseline entry is now stale.
        write_module(tmp_path, "core/x.py", "x = 1\n")
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--baseline",
                    str(baseline_path),
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == [
            "BASELINE-STALE"
        ]
        # Rewriting the baseline drops the dead entry.
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--write-baseline",
                    "--baseline",
                    str(baseline_path),
                ]
            )
            == 0
        )
        assert json.loads(baseline_path.read_text())["findings"] == []
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--baseline",
                    str(baseline_path),
                ]
            )
            == 0
        )
        capsys.readouterr()


class TestSelfCheck:
    def test_benchmarks_and_examples_are_clean(self, capsys):
        paths = [
            os.path.join(REPO_ROOT, "benchmarks"),
            os.path.join(REPO_ROOT, "examples"),
        ]
        assert main(["lint", *paths, "--no-baseline"]) == 0
        capsys.readouterr()

    def test_multi_hop_canary_fails_the_build(self, tmp_path, capsys):
        # The CI canary contract: a seeded cross-module chain must exit 1.
        write_module(
            tmp_path,
            "core/helpers.py",
            """
            def support(nodes):
                return {n for n in nodes}
            """,
        )
        write_module(
            tmp_path,
            "aig/fp.py",
            """
            from core.helpers import support
            from aig.sig import canonical_cone_signature

            def fingerprint(nodes):
                return canonical_cone_signature(list(support(nodes)))
            """,
        )
        assert main(["lint", str(tmp_path), "--no-baseline"]) == 1
        capsys.readouterr()
