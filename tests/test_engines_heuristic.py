"""Tests for the heuristic baselines: LJH and STEP-MG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.function import BooleanFunction
from repro.circuits.generators import decomposable_by_construction, parity_tree
from repro.core.checks import RelaxationChecker, check_decomposable
from repro.core.ljh import ljh_decompose, ljh_find_partition
from repro.core.mus_partition import mus_decompose, mus_find_partition
from repro.core.spec import ENGINE_LJH, ENGINE_STEP_MG
from repro.utils.timer import Deadline

from tests.reference import all_nontrivial_partitions, decomposable as reference_decomposable


def _checker_for(operator, size_a=2, size_b=2, size_c=1, seed=1):
    aig, xa, xb, xc = decomposable_by_construction(operator, size_a, size_b, size_c, seed=seed)
    f = BooleanFunction.from_output(aig, "f")
    return RelaxationChecker(f, operator), f


class TestLjh:
    @pytest.mark.parametrize("operator", ["or", "and", "xor"])
    def test_finds_valid_partition_on_constructed_instances(self, operator):
        checker, f = _checker_for(operator, seed=19)
        partition = ljh_find_partition(checker)
        assert partition is not None
        assert not partition.is_trivial
        assert check_decomposable(f, operator, partition)

    def test_reports_non_decomposable(self):
        # 2-input XOR has no non-trivial OR decomposition.
        f = BooleanFunction.from_truth_table(0b0110, 2)
        checker = RelaxationChecker(f, "or")
        assert ljh_find_partition(checker) is None

    def test_result_record(self):
        checker, f = _checker_for("or", seed=2)
        result = ljh_decompose(checker)
        assert result.engine == ENGINE_LJH
        assert result.decomposed
        assert result.partition is not None
        assert result.stats.sat_calls > 0
        assert not result.optimum_proven

    def test_deadline_respected(self):
        checker, _ = _checker_for("or", 3, 3, 2, seed=3)
        result = ljh_decompose(checker, deadline=Deadline(0.0))
        assert result.timed_out or result.decomposed in (True, False)

    def test_parity_xor(self):
        f = BooleanFunction.from_output(parity_tree(4), "p")
        checker = RelaxationChecker(f, "xor")
        partition = ljh_find_partition(checker)
        assert partition is not None
        assert check_decomposable(f, "xor", partition)


class TestStepMg:
    @pytest.mark.parametrize("operator", ["or", "and", "xor"])
    def test_finds_valid_partition_on_constructed_instances(self, operator):
        checker, f = _checker_for(operator, seed=29)
        partition = mus_find_partition(checker)
        assert partition is not None
        assert not partition.is_trivial
        assert check_decomposable(f, operator, partition)

    def test_reports_non_decomposable(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        checker = RelaxationChecker(f, "or")
        assert mus_find_partition(checker) is None

    def test_result_record(self):
        checker, _ = _checker_for("or", seed=5)
        result = mus_decompose(checker)
        assert result.engine == ENGINE_STEP_MG
        assert result.decomposed
        assert result.stats.sat_calls > 0

    def test_uses_fewer_checks_than_ljh_on_larger_instances(self):
        checker_mg, _ = _checker_for("or", 3, 3, 2, seed=41)
        checker_ljh, _ = _checker_for("or", 3, 3, 2, seed=41)
        mg = mus_decompose(checker_mg)
        ljh = ljh_decompose(checker_ljh)
        assert mg.decomposed and ljh.decomposed
        assert mg.stats.sat_calls <= ljh.stats.sat_calls

    def test_parity_xor(self):
        f = BooleanFunction.from_output(parity_tree(5), "p")
        checker = RelaxationChecker(f, "xor")
        partition = mus_find_partition(checker)
        assert partition is not None
        assert check_decomposable(f, "xor", partition)


class _CountingDeadline:
    """Never expires; counts how often ``expired`` is read."""

    def __init__(self):
        self.reads = 0

    @property
    def expired(self):
        self.reads += 1
        return False


class _ScriptedDeadline:
    """``expired`` is False for the first ``quota`` reads, then True."""

    def __init__(self, quota):
        self.quota = quota

    @property
    def expired(self):
        self.quota -= 1
        return self.quota < 0


class TestTimedOutReflectsTruncation:
    """``timed_out`` means "the search was cut short", not "time is up now".

    Calibration trick: a first run counts every ``expired`` read the search
    performs; a second run answers False for exactly that many reads and
    True afterwards.  The searches are deterministic, so the second run
    completes untruncated — and any reintroduced post-completion read of
    the deadline (the old bug: ``timed_out = deadline.expired`` at
    result-construction time) would see True and fail these tests.
    """

    @pytest.mark.parametrize("decompose", [ljh_decompose, mus_decompose])
    def test_completed_search_not_flagged(self, decompose):
        counter = _CountingDeadline()
        calibration = decompose(_checker_for("or", seed=19)[0], deadline=counter)
        assert calibration.decomposed and not calibration.timed_out
        result = decompose(
            _checker_for("or", seed=19)[0],
            deadline=_ScriptedDeadline(counter.reads),
        )
        assert result.decomposed
        assert not result.timed_out

    @pytest.mark.parametrize("decompose", [ljh_decompose, mus_decompose])
    def test_truncated_search_is_flagged(self, decompose):
        result = decompose(_checker_for("or", seed=19)[0], deadline=Deadline(0.0))
        assert result.timed_out
        assert not result.decomposed

    @pytest.mark.parametrize("decompose", [ljh_decompose, mus_decompose])
    def test_mid_search_truncation_is_flagged(self, decompose):
        """Cutting the budget partway through must still read as a timeout."""
        counter = _CountingDeadline()
        decompose(_checker_for("or", 3, 3, 2, seed=3)[0], deadline=counter)
        assert counter.reads > 2
        result = decompose(
            _checker_for("or", 3, 3, 2, seed=3)[0],
            deadline=_ScriptedDeadline(counter.reads // 2),
        )
        assert result.timed_out


class TestAgainstExhaustiveReference:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.sampled_from(["or", "and", "xor"]),
    )
    def test_engines_agree_with_reference_on_decomposability(self, table, operator):
        """If any non-trivial partition exists, both engines must find one."""
        n = 4
        exists = any(
            reference_decomposable(table, n, operator, xa, xb)
            for xa, xb, _ in all_nontrivial_partitions(n)
        )
        f = BooleanFunction.from_truth_table(table, n)
        for finder in (ljh_find_partition, mus_find_partition):
            checker = RelaxationChecker(f, operator)
            partition = finder(checker)
            if partition is None:
                assert not exists
            else:
                names = f.input_names
                xa = [names.index(x) for x in partition.xa]
                xb = [names.index(x) for x in partition.xb]
                assert reference_decomposable(table, n, operator, xa, xb)
