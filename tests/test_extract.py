"""Tests for fA/fB extraction (quantification, interpolation, BDD back-ends)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.function import BooleanFunction
from repro.circuits.generators import decomposable_by_construction, parity_tree
from repro.core.checks import check_decomposable
from repro.core.extract import extract_functions
from repro.core.partition import VariablePartition
from repro.core.verify import verify_decomposition
from repro.errors import DecompositionError, VerificationError

from tests.reference import decomposable as reference_decomposable

METHODS = ["quantification", "interpolation", "bdd"]


def _partition_for(f, xa, xb, xc):
    present = set(f.input_names)
    return VariablePartition(
        tuple(n for n in xa if n in present),
        tuple(n for n in xb if n in present),
        tuple(n for n in xc if n in present),
    )


class TestConstructedInstances:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("operator", ["or", "and", "xor"])
    def test_extraction_verifies(self, operator, method):
        aig, xa, xb, xc = decomposable_by_construction(operator, 2, 2, 1, seed=17)
        f = BooleanFunction.from_output(aig, "f")
        partition = _partition_for(f, xa, xb, xc)
        if partition.is_trivial:
            pytest.skip("degenerate random instance")
        fa, fb = extract_functions(f, operator, partition, method=method)
        assert verify_decomposition(f, operator, fa, fb, partition)

    @pytest.mark.parametrize("method", METHODS)
    def test_parity_xor_extraction(self, method):
        f = BooleanFunction.from_output(parity_tree(4), "p")
        names = f.input_names
        partition = VariablePartition(tuple(names[:2]), tuple(names[2:]), ())
        fa, fb = extract_functions(f, "xor", partition, method=method)
        assert verify_decomposition(f, "xor", fa, fb, partition)

    def test_extracted_supports_respect_partition(self):
        aig, xa, xb, xc = decomposable_by_construction("or", 3, 2, 1, seed=23)
        f = BooleanFunction.from_output(aig, "f")
        partition = _partition_for(f, xa, xb, xc)
        if partition.is_trivial:
            pytest.skip("degenerate random instance")
        fa, fb = extract_functions(f, "or", partition, method="interpolation")
        assert set(fa.support_names()) <= set(partition.xa) | set(partition.xc)
        assert set(fb.support_names()) <= set(partition.xb) | set(partition.xc)

    def test_trivial_partition_rejected(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        names = f.input_names
        with pytest.raises(DecompositionError):
            extract_functions(f, "or", VariablePartition(tuple(names), (), ()))

    def test_non_decomposable_interpolation_rejected(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)  # XOR: not OR-decomposable
        names = f.input_names
        partition = VariablePartition((names[0],), (names[1],), ())
        with pytest.raises(DecompositionError):
            extract_functions(f, "or", partition, method="interpolation")

    def test_non_decomposable_bdd_rejected(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        names = f.input_names
        partition = VariablePartition((names[0],), (names[1],), ())
        with pytest.raises(DecompositionError):
            extract_functions(f, "or", partition, method="bdd")

    def test_unknown_method_rejected(self):
        f = BooleanFunction.from_truth_table(0b1000, 2)
        names = f.input_names
        with pytest.raises(DecompositionError):
            extract_functions(
                f, "or", VariablePartition((names[0],), (names[1],), ()), method="magic"
            )


class TestVerification:
    def test_verify_detects_wrong_operator(self):
        aig, xa, xb, xc = decomposable_by_construction("or", 2, 2, 0, seed=31)
        f = BooleanFunction.from_output(aig, "f")
        partition = _partition_for(f, xa, xb, xc)
        if partition.is_trivial:
            pytest.skip("degenerate random instance")
        fa, fb = extract_functions(f, "or", partition)
        if fa.combine(fb, "and").semantically_equal(f):
            pytest.skip("degenerate instance where AND also matches")
        with pytest.raises(VerificationError):
            verify_decomposition(f, "and", fa, fb, partition)
        assert not verify_decomposition(
            f, "and", fa, fb, partition, raise_on_failure=False
        )

    def test_verify_detects_support_violation(self):
        f = BooleanFunction.from_output(parity_tree(3), "p")
        names = f.input_names
        partition = VariablePartition((names[0],), (names[1], names[2]), ())
        fa, fb = extract_functions(f, "xor", partition)
        # Swap the roles: fb depends on two variables not allowed for fA.
        with pytest.raises(VerificationError):
            verify_decomposition(f, "xor", fb, fa, partition)


class TestRandomAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.sampled_from(["or", "and", "xor"]),
        st.sampled_from(METHODS),
    )
    def test_random_decomposable_functions_extract_correctly(self, table, operator, method):
        n = 4
        xa_positions, xb_positions = [0, 1], [2, 3]
        if not reference_decomposable(table, n, operator, xa_positions, xb_positions):
            return
        f = BooleanFunction.from_truth_table(table, n)
        names = f.input_names
        partition = VariablePartition(tuple(names[:2]), tuple(names[2:]), ())
        fa, fb = extract_functions(f, operator, partition, method=method)
        assert verify_decomposition(f, operator, fa, fb, partition)
