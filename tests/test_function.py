"""Tests for BooleanFunction (evaluation, cofactors, quantification, CNF)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.errors import AigError


def _xor3():
    aig = AIG()
    a, b, c = (aig.add_input(n) for n in "abc")
    root = aig.lxor(aig.lxor(a, b), c)
    aig.add_output("f", root)
    return BooleanFunction.from_output(aig, "f")


def _majority3():
    aig = AIG()
    a, b, c = (aig.add_input(n) for n in "abc")
    root = aig.lor(aig.lor(aig.add_and(a, b), aig.add_and(a, c)), aig.add_and(b, c))
    aig.add_output("maj", root)
    return BooleanFunction.from_output(aig, "maj")


class TestConstruction:
    def test_from_output_by_name_and_index(self):
        f = _xor3()
        g = BooleanFunction.from_output(f.aig, 0)
        assert g.truth_table() == f.truth_table()

    def test_unknown_output_rejected(self):
        f = _xor3()
        with pytest.raises(AigError):
            BooleanFunction.from_output(f.aig, "nope")

    def test_inputs_must_cover_cone(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        g = aig.add_and(a, b)
        with pytest.raises(AigError):
            BooleanFunction(aig, g, [aig.input_by_name("a")])

    def test_constant_functions(self):
        assert BooleanFunction.constant(True).is_constant() is True
        assert BooleanFunction.constant(False).is_constant() is False

    def test_from_truth_table_roundtrip(self):
        table = 0b01101001  # 3-input XNOR-ish pattern
        f = BooleanFunction.from_truth_table(table, 3)
        assert f.truth_table() == table

    def test_from_truth_table_input_names(self):
        f = BooleanFunction.from_truth_table(0b0110, 2, input_names=["p", "q"])
        assert f.input_names == ["p", "q"]

    def test_from_truth_table_validation(self):
        with pytest.raises(AigError):
            BooleanFunction.from_truth_table(1 << 20, 2)
        with pytest.raises(AigError):
            BooleanFunction.from_truth_table(0, 2, input_names=["onlyone"])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_from_truth_table_is_exact(self, table):
        f = BooleanFunction.from_truth_table(table, 4)
        assert f.truth_table() == table


class TestEvaluation:
    def test_positional_evaluation(self):
        f = _xor3()
        assert f.evaluate([True, False, False]) is True
        assert f.evaluate([True, True, False]) is False

    def test_named_evaluation(self):
        f = _xor3()
        assert f.evaluate({"a": True, "b": True, "c": True}) is True

    def test_wrong_arity_rejected(self):
        with pytest.raises(AigError):
            _xor3().evaluate([True])

    def test_truth_table_and_minterms(self):
        maj = _majority3()
        assert maj.truth_table() == 0b11101000
        assert maj.count_minterms() == 4

    def test_support_names(self):
        assert _majority3().support_names() == ["a", "b", "c"]

    def test_is_constant_none_for_nonconstant(self):
        assert _xor3().is_constant() is None


class TestCofactorsAndQuantification:
    def test_cofactor_values(self):
        maj = _majority3()
        pos = maj.cofactor("a", True)
        neg = maj.cofactor("a", False)
        # maj(1,b,c) = b OR c; maj(0,b,c) = b AND c
        assert pos.truth_table() == 0b1110
        assert neg.truth_table() == 0b1000

    def test_cofactor_removes_input(self):
        f = _xor3().cofactor("b", True)
        assert f.input_names == ["a", "c"]

    def test_exists_and_forall(self):
        maj = _majority3()
        exists_a = maj.exists(["a"])
        forall_a = maj.forall(["a"])
        assert exists_a.truth_table() == 0b1110  # b OR c
        assert forall_a.truth_table() == 0b1000  # b AND c

    def test_quantify_all_gives_constant(self):
        maj = _majority3()
        assert maj.exists(["a", "b", "c"]).truth_table() == 1
        assert maj.forall(["a", "b", "c"]).truth_table() == 0

    def test_negate(self):
        f = _xor3()
        assert f.negate().truth_table() == (~f.truth_table()) & 0xFF

    def test_restrict_inputs_superset(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        g = aig.add_and(a, b)
        f = BooleanFunction(aig, g, [aig.input_by_name(n) for n in "ab"])
        widened = f.restrict_inputs(["a", "b", "c"])
        assert widened.num_inputs == 3


class TestCombination:
    def test_combine_or(self):
        f = _xor3()
        g = _majority3()
        combined = f.combine(g, "or")
        for pattern in range(8):
            values = {"a": bool(pattern & 1), "b": bool(pattern & 2), "c": bool(pattern & 4)}
            assert combined.evaluate(values) == (f.evaluate(values) or g.evaluate(values))

    def test_combine_and_xor(self):
        f = _xor3()
        g = _majority3()
        for op, fn in [("and", lambda x, y: x and y), ("xor", lambda x, y: x != y)]:
            combined = f.combine(g, op)
            for pattern in range(8):
                values = {
                    "a": bool(pattern & 1),
                    "b": bool(pattern & 2),
                    "c": bool(pattern & 4),
                }
                assert combined.evaluate(values) == fn(f.evaluate(values), g.evaluate(values))

    def test_combine_disjoint_inputs(self):
        f = BooleanFunction.from_truth_table(0b0110, 2, input_names=["x", "y"])
        g = BooleanFunction.from_truth_table(0b1000, 2, input_names=["u", "v"])
        combined = f.combine(g, "or")
        assert set(combined.input_names) == {"x", "y", "u", "v"}

    def test_combine_unknown_operator(self):
        with pytest.raises(AigError):
            _xor3().combine(_majority3(), "nand")


class TestEquality:
    def test_semantically_equal_same_structure(self):
        assert _xor3().semantically_equal(_xor3())

    def test_semantically_equal_different_structure(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        # (a XOR b) XOR c written as c XOR (b XOR a)
        root = aig.lxor(c, aig.lxor(b, a))
        aig.add_output("g", root)
        g = BooleanFunction.from_output(aig, "g")
        assert _xor3().semantically_equal(g)

    def test_not_equal(self):
        assert not _xor3().semantically_equal(_majority3())

    def test_equal_with_extra_irrelevant_input(self):
        aig = AIG()
        a, b, c, d = (aig.add_input(n) for n in "abcd")
        root = aig.lxor(aig.lxor(a, b), c)
        aig.add_output("f", root)
        g = BooleanFunction(aig, root, [aig.input_by_name(n) for n in "abcd"])
        assert _xor3().semantically_equal(g)


class TestCnfExport:
    def test_to_cnf_respects_given_input_vars(self):
        from repro.sat.cnf import CNF
        from repro.sat.solver import Solver

        f = _majority3()
        cnf = CNF()
        name_vars = {name: cnf.new_var() for name in f.input_names}
        mapping = f.to_cnf(
            cnf, input_vars={f.aig.input_by_name(n): v for n, v in name_vars.items()}
        )
        solver = Solver()
        solver.add_cnf(cnf)
        for pattern in range(8):
            values = {"a": bool(pattern & 1), "b": bool(pattern & 2), "c": bool(pattern & 4)}
            expected = f.evaluate(values)
            assumptions = [
                name_vars[n] if values[n] else -name_vars[n] for n in f.input_names
            ]
            assumptions.append(mapping.output_literal if expected else -mapping.output_literal)
            assert solver.solve(assumptions=assumptions).status is True
