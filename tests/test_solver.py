"""Tests for the CDCL SAT solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.sat.cnf import CNF
from repro.sat.solver import (
    GLUE_LBD,
    PySolver,
    Solver,
    SolveResult,
    _Clause,
    _luby,
    solve_cnf,
)
from repro.utils.timer import Deadline

from tests.reference import brute_force_sat


def _solve(clauses, assumptions=()):
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver, solver.solve(assumptions=assumptions)


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        _, result = _solve([])
        assert result.status is True

    def test_single_unit(self):
        solver, result = _solve([[1]])
        assert result.status is True
        assert result.model[1] is True

    def test_contradictory_units(self):
        _, result = _solve([[1], [-1]])
        assert result.status is False

    def test_simple_implication_chain(self):
        solver, result = _solve([[-1, 2], [-2, 3], [1]])
        assert result.status is True
        assert result.model[3] is True

    def test_unsat_triangle(self):
        _, result = _solve([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert result.status is False

    def test_model_satisfies_formula(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        solver, result = _solve(clauses)
        assert result.status is True
        cnf = CNF(clauses=clauses)
        assert cnf.evaluate({v: result.model.get(v, False) for v in range(1, 4)})

    def test_tautological_clause_ignored(self):
        solver = Solver()
        assert solver.add_clause([1, -1]) is None
        assert solver.solve().status is True

    def test_duplicate_literals_collapse(self):
        solver, result = _solve([[1, 1, 1]])
        assert result.status is True
        assert result.model[1] is True

    def test_invalid_literal_rejected(self):
        with pytest.raises(SolverError):
            Solver().add_clause([0])

    def test_solver_state_after_unsat_stays_unsat(self):
        solver, result = _solve([[1], [-1]])
        assert result.status is False
        assert solver.solve().status is False
        assert solver.ok is False

    def test_empty_clause_makes_unsat(self):
        solver = Solver()
        solver.add_clause([])
        assert solver.solve().status is False

    def test_solve_cnf_helper(self):
        cnf = CNF(clauses=[[1, 2], [-1]])
        result = solve_cnf(cnf)
        assert result.status is True
        assert result.model[2] is True

    def test_result_is_truthy_only_when_sat(self):
        assert bool(SolveResult(status=True)) is True
        assert bool(SolveResult(status=False)) is False
        assert bool(SolveResult(status=None)) is False


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """PHP(holes+1, holes): unsatisfiable, forces real conflict analysis."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        _, result = _solve(self._pigeonhole(holes))
        assert result.status is False

    def test_satisfiable_when_equal(self):
        # n pigeons into n holes is satisfiable (drop one pigeon's clauses).
        clauses = self._pigeonhole(3)
        # Remove the at-least-one clause of the last pigeon.
        clauses = [c for c in clauses if c != [10, 11, 12]]
        _, result = _solve(clauses)
        assert result.status is True


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver, result = _solve([[1, 2]], assumptions=[-1])
        assert result.status is True
        assert result.model[2] is True

    def test_conflicting_assumptions_give_core(self):
        solver = Solver()
        solver.add_clause([-1, -2])
        result = solver.solve(assumptions=[1, 2])
        assert result.status is False
        assert set(result.core) <= {1, 2}
        assert len(result.core) >= 1

    def test_core_is_sufficient(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, -1])
        result = solver.solve(assumptions=[1, 4, 5])
        assert result.status is False
        assert 1 in result.core
        assert 4 not in result.core and 5 not in result.core

    def test_incremental_reuse(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).status is True
        assert solver.solve(assumptions=[-2]).status is True
        assert solver.solve(assumptions=[-1, -2]).status is False
        assert solver.solve().status is True

    def test_adding_clauses_between_solves(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve().status is True
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().status is False

    def test_assumption_zero_rejected(self):
        solver = Solver()
        solver.add_clause([1])
        with pytest.raises(SolverError):
            solver.solve(assumptions=[0])

    def test_model_value_helper(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-2])
        assert solver.solve().status is True
        assert solver.model_value(1) is True
        assert solver.model_value(-1) is False
        assert solver.model_value(2) is False


class TestBudgets:
    def test_conflict_budget_returns_unknown(self):
        # A hard pigeonhole instance with a tiny conflict budget.
        solver = Solver()
        holes = 6
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        result = solver.solve(conflict_budget=5)
        assert result.status is None

    def test_expired_deadline_returns_unknown(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve(deadline=Deadline(0.0))
        assert result.status is None


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


class TestRandomAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_3sat_matches_brute_force(self, data):
        num_vars = data.draw(st.integers(min_value=1, max_value=6))
        num_clauses = data.draw(st.integers(min_value=1, max_value=20))
        clauses = []
        for _ in range(num_clauses):
            width = data.draw(st.integers(min_value=1, max_value=3))
            clause = [
                data.draw(st.integers(min_value=1, max_value=num_vars))
                * data.draw(st.sampled_from([1, -1]))
                for _ in range(width)
            ]
            clauses.append(clause)
        expected = brute_force_sat(clauses, num_vars)
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.status is (expected is not None)
        if result.status:
            cnf = CNF(clauses=clauses)
            model = {v: result.model.get(v, False) for v in range(1, num_vars + 1)}
            assert cnf.evaluate(model)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_assumption_core_reproduces_unsat(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=5))
        num_clauses = data.draw(st.integers(min_value=2, max_value=12))
        clauses = []
        for _ in range(num_clauses):
            clause = [
                data.draw(st.integers(min_value=1, max_value=num_vars))
                * data.draw(st.sampled_from([1, -1]))
                for _ in range(data.draw(st.integers(min_value=1, max_value=3)))
            ]
            clauses.append(clause)
        assumptions = [
            v * data.draw(st.sampled_from([1, -1])) for v in range(1, num_vars + 1)
        ]
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve(assumptions=assumptions)
        if result.status is False:
            # The reported core must itself be unsatisfiable with the clauses.
            units = [[lit] for lit in result.core]
            assert brute_force_sat(clauses + units, num_vars) is None


class TestPropagationCounting:
    def test_propagations_count_enqueues_not_dequeues(self):
        """``propagations`` counts *derived* assignments (enqueues by unit
        propagation), never the root units or decisions themselves."""
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.propagations == 0
        # The level-0 unit enqueues 1 (a root fact, not counted) and
        # propagation then derives 2 and 3 (counted).
        solver.add_clause([1])
        assert solver.propagations == 2
        result = solver.solve()
        assert result.status is True
        assert result.propagations == solver.propagations == 2

    def test_result_carries_the_work_counters(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.status is True
        assert result.conflicts == solver.conflicts
        assert result.decisions == solver.decisions >= 1
        assert result.propagations == solver.propagations


class TestLbdReduction:
    """Unit tests for :meth:`PySolver._reduce_db` retention policy."""

    def _learned(self, solver, variables, lbd, cid):
        clause = _Clause([2 * v for v in variables], learned=True, cid=cid)
        clause.lbd = lbd
        solver._learnts.append(clause)
        return clause

    def test_glue_survives_and_locked_is_never_dropped(self):
        solver = PySolver()
        solver._ensure_var(8)
        # Six droppable clauses with distinct LBDs (3..8) and four glue
        # clauses.  Worst-first ordering puts the high-LBD clauses in the
        # discarded half; the highest-LBD one is pinned as a reason.
        droppable = [
            self._learned(solver, (1, 2, 3), lbd=3 + i, cid=100 + i)
            for i in range(6)
        ]
        glue = [
            self._learned(solver, (4, 5, 6), lbd=GLUE_LBD, cid=200 + i)
            for i in range(4)
        ]
        locked = droppable[-1]  # lbd 8: sorts into the worst half
        solver._reason[3] = locked
        solver._reduce_db()
        assert all(clause.lits is not None for clause in glue)
        assert locked.lits is not None
        assert locked.locked is False  # the lock is scoped to the reduction
        dead = [clause for clause in droppable if clause.lits is None]
        assert dead, "reduction dropped nothing"
        assert locked not in dead
        assert all(clause.lbd > GLUE_LBD for clause in dead)
        # The survivor list is compacted; dead clauses are only marked
        # (lits=None) and left for lazy watcher cleanup.
        assert len(solver._learnts) == 10 - len(dead)
        assert all(clause.lits is not None for clause in solver._learnts)

    def test_binary_learned_clauses_survive(self):
        solver = PySolver()
        solver._ensure_var(6)
        binary = [
            self._learned(solver, (1, 2), lbd=5, cid=300 + i) for i in range(4)
        ]
        for i in range(4):
            self._learned(solver, (3, 4, 5), lbd=4, cid=400 + i)
        solver._reduce_db()
        assert all(clause.lits is not None for clause in binary)

    def test_lazy_cleanup_reaps_dead_clauses_during_propagation(self):
        solver = PySolver()
        solver.add_clause([1, 2, 3])
        solver.add_clause([1, 2, -3])
        target = solver._clauses[0]
        watch_lists = [
            watch for watch in solver._watches if target in watch
        ]
        assert watch_lists
        target.lits = None  # simulate a reduction marking it dead
        solver.add_clause([-1])
        solver.add_clause([-2])  # forces propagation past the dead clause
        assert all(target not in watch for watch in solver._watches)
