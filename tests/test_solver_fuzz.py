"""Fuzz tests for the CDCL solver against a brute-force reference.

Random 3-CNF instances around the satisfiability phase transition are solved
by the CDCL solver and cross-checked against exhaustive enumeration
(:func:`tests.reference.brute_force_sat`):

* SAT answers must come with a model that satisfies every clause,
* UNSAT answers must agree with the brute-force verdict and, when proof
  logging is on, carry a resolution refutation that replays to the empty
  clause,
* UNSAT-under-assumptions answers must return a core whose literals are
  assumptions and whose conjunction with the formula is brute-force UNSAT.
"""

import pytest

from tests.reference import brute_force_sat
from repro.sat.solver import Solver
from repro.utils.rng import deterministic_rng


def random_3cnf(num_vars, num_clauses, seed):
    rng = deterministic_rng(seed)
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in chosen))
    return clauses


def model_satisfies(model, clauses):
    return all(
        any(model[abs(l)] if l > 0 else not model[abs(l)] for l in clause)
        for clause in clauses
    )


def instances():
    """A deterministic mix of SAT and UNSAT instances (7-9 variables)."""
    cases = []
    for trial in range(30):
        num_vars = 7 + trial % 3
        num_clauses = int(num_vars * (3.5 + 0.1 * (trial % 14)))
        cases.append(
            (f"fuzz-{trial}", num_vars, random_3cnf(num_vars, num_clauses, f"fuzz-{trial}"))
        )
    return cases


INSTANCES = instances()


def test_population_is_mixed():
    verdicts = {brute_force_sat(clauses, n) is not None for _, n, clauses in INSTANCES}
    assert verdicts == {True, False}


@pytest.mark.parametrize("label,num_vars,clauses", INSTANCES)
def test_verdict_matches_brute_force(label, num_vars, clauses):
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    expected = brute_force_sat(clauses, num_vars)
    assert result.status is (expected is not None)
    if result.status:
        model = solver.model()
        assert model_satisfies(model, clauses)


@pytest.mark.parametrize(
    "label,num_vars,clauses",
    [case for case in INSTANCES if brute_force_sat(case[2], case[1]) is None],
)
def test_unsat_proofs_replay_to_the_empty_clause(label, num_vars, clauses):
    solver = Solver(proof=True)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    assert result.status is False
    proof = solver.proof()
    assert proof.has_refutation
    # check() replays every learned chain and the final refutation chain.
    assert proof.check()
    assert proof.replay_chain(proof.empty_chain) == set()


@pytest.mark.parametrize("label,num_vars,clauses", INSTANCES[:12])
def test_assumption_cores_are_sound(label, num_vars, clauses):
    rng = deterministic_rng(f"assume-{label}")
    assumptions = [
        v if rng.random() < 0.5 else -v
        for v in rng.sample(range(1, num_vars + 1), 3)
    ]
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve(assumptions=assumptions)
    augmented = list(clauses) + [(lit,) for lit in assumptions]
    expected = brute_force_sat(augmented, num_vars)
    if result.status is None:
        pytest.skip("budget exhausted (not expected at this size)")
    assert result.status is (expected is not None)
    if result.status:
        model = solver.model()
        assert model_satisfies(model, augmented)
    elif brute_force_sat(clauses, num_vars) is not None:
        # The formula alone is SAT, so the conflict involves assumptions and
        # the reported core must pin it: formula + core is still UNSAT.
        core = solver.core()
        assert core
        assert set(core) <= set(assumptions)
        with_core = list(clauses) + [(lit,) for lit in core]
        assert brute_force_sat(with_core, num_vars) is None


def test_incremental_reuse_across_calls():
    """The same solver object stays sound over repeated solve/add cycles."""
    label, num_vars, clauses = INSTANCES[0]
    solver = Solver()
    for clause in clauses[: len(clauses) // 2]:
        solver.add_clause(clause)
    first = solver.solve()
    assert first.status is (brute_force_sat(clauses[: len(clauses) // 2], num_vars) is not None)
    for clause in clauses[len(clauses) // 2 :]:
        solver.add_clause(clause)
    second = solver.solve()
    assert second.status is (brute_force_sat(clauses, num_vars) is not None)
