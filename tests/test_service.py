"""Tests for the decomposition service: daemon, wire protocol, clients.

The contracts under test:

* a report obtained through the daemon is **fingerprint-identical** to the
  same request run through a local ``Session`` (acceptance criterion);
* N clients share ONE warm executor pool (``stats["pools_created"]``);
* cancelling one in-flight request never perturbs concurrent requests;
* malformed and version-mismatched frames get one-line ``error`` replies
  and the connection (and daemon) live on;
* the ``step client`` CLI mirrors ``step decompose`` against a daemon.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.api import (
    Budgets,
    DecompositionRequest,
    EngineSpec,
    Session,
    default_registry,
)
from repro.circuits.generators import (
    decomposable_by_construction,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.result import BiDecResult
from repro.core.spec import ENGINE_STEP_MG, ENGINE_STEP_QD
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.service import PROTOCOL_VERSION, ServiceClient, ServiceThread
from repro.service.protocol import (
    decode_circuit,
    decode_report,
    decode_request,
    encode_circuit,
    encode_report,
    encode_request,
)


def request_for(aig, engines=(ENGINE_STEP_MG,), **kwargs):
    return DecompositionRequest(
        circuit=aig, operator="or", engines=tuple(engines), **kwargs
    )


@pytest.fixture
def socket_path(tmp_path):
    # AF_UNIX paths are limited to ~107 bytes; pytest tmp dirs stay well
    # under that, but keep the file name tight anyway.
    return str(tmp_path / "repro.sock")


@pytest.fixture
def daemon(socket_path):
    """An in-process daemon on the thread backend (plug-in engines and
    coverage both need the workers in this process)."""
    with ServiceThread(socket_path, jobs=2, backend="thread") as service:
        yield service


class TestWireCodecs:
    @pytest.mark.parametrize("builder", [mux_tree, ripple_carry_adder, parity_tree])
    def test_circuit_roundtrip_is_node_exact(self, builder):
        aig = builder(3)
        back = decode_circuit(json.loads(json.dumps(encode_circuit(aig))))
        assert back.name == aig.name
        assert back.num_nodes == aig.num_nodes
        assert back.outputs == aig.outputs
        for index in range(back.num_nodes):
            assert back.node_kind(index) == aig.node_kind(index)
            if aig.is_and(index):
                assert back.fanins(index) == aig.fanins(index)

    def test_latched_circuit_roundtrip(self):
        from repro.aig.aig import AIG

        aig = AIG("seq")
        a = aig.add_input("a")
        latch = aig.add_latch("l0", init_value=1)
        aig.set_latch_next(latch, aig.land(a, latch))
        aig.add_output("o", aig.lor(a, latch))
        back = decode_circuit(encode_circuit(aig))
        assert back.latches == aig.latches
        assert back.node(back.latches[0]).init_value == 1
        assert back.node(back.latches[0]).next_state is not None

    def test_tampered_circuit_is_one_line_protocol_error(self):
        wire = encode_circuit(mux_tree(2))
        wire["nodes"][0] = ["a", 2, 4]  # an input replayed as an AND
        with pytest.raises(ProtocolError, match="malformed circuit"):
            decode_circuit(wire)

    def test_request_roundtrip_preserves_the_decomposition_definition(self):
        request = request_for(
            ripple_carry_adder(2),
            engines=(ENGINE_STEP_MG, ENGINE_STEP_QD),
            budgets=Budgets(per_call=2.0, per_output=30.0, per_circuit=600.0),
            priority=2.5,
            max_outputs=2,
        )
        back = decode_request(json.loads(json.dumps(encode_request(request))))
        assert back.operator == request.operator
        assert back.engines == request.engines
        assert back.budgets == request.budgets
        assert back.priority == request.priority
        assert back.max_outputs == request.max_outputs
        assert Session().run(back).fingerprint() == Session().run(request).fingerprint()

    def test_report_roundtrip_is_fingerprint_identical(self):
        # decomposable_by_construction guarantees extracted fa/fb travel.
        aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=13)
        report = Session().run(request_for(aig, engines=(ENGINE_STEP_QD,)))
        back = decode_report(json.loads(json.dumps(encode_report(report))))
        assert back.fingerprint() == report.fingerprint()
        assert back.schedule == report.schedule
        wire_fa = back.outputs[0].results[ENGINE_STEP_QD].fa
        assert wire_fa is not None
        real = wire_fa.to_function()
        assert real.truth_table() == wire_fa.truth_table()

    def test_bad_request_payload_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="missing field"):
            decode_request({"operator": "or"})
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request([1, 2, 3])


class TestDaemonRoundTrip:
    def test_daemon_report_fingerprint_identical_to_local_session(self, daemon):
        """Acceptance: daemon result == local Session result, bit for bit."""
        request = request_for(
            ripple_carry_adder(2), engines=(ENGINE_STEP_MG, ENGINE_STEP_QD)
        )
        with ServiceClient(daemon.socket_path) as client:
            remote = client.run(request)
        local = Session().run(request)
        assert remote.fingerprint() == local.fingerprint()
        assert remote.schedule.get("live") is True

    def test_progress_events_stream_per_output(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            request_id = client.submit(request_for(ripple_carry_adder(2)))
            report = client.wait(request_id)
            outputs = {event["output"] for event in client.events(request_id)}
        assert outputs == {record.output_name for record in report.outputs}

    def test_two_concurrent_clients_share_one_pool(self, daemon):
        """Acceptance: N clients, one executor (stats is the witness)."""
        results = {}

        def run_client(key, aig):
            with ServiceClient(daemon.socket_path) as client:
                results[key] = client.run(request_for(aig))

        threads = [
            threading.Thread(target=run_client, args=("a", mux_tree(2))),
            threading.Thread(target=run_client, args=("b", ripple_carry_adder(2))),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert results["a"].circuit == "mux2"
        assert results["b"].circuit == "rca2"
        with ServiceClient(daemon.socket_path) as client:
            stats = client.stats()
        assert stats["pools_created"] == 1
        assert stats["completed"] >= 2
        assert stats["backend"] == "thread"

    def test_cancel_mid_suite_leaves_other_requests_unaffected(self, daemon):
        """Acceptance: cancelling one in-flight request perturbs nothing."""
        release = threading.Event()

        def stalling(function, operator, *, options, deadline):
            release.wait(30)
            return BiDecResult(
                engine="TEST-STALL", operator=operator, decomposed=False
            )

        default_registry().register(EngineSpec("TEST-STALL", runner=stalling))
        try:
            with ServiceClient(daemon.socket_path) as client:
                slow = client.submit(
                    request_for(ripple_carry_adder(2), engines=("TEST-STALL",))
                )
                fast = client.submit(request_for(mux_tree(2)))
                assert client.cancel(slow) is True
                release.set()  # let any in-flight stalled job finish
                report = client.wait(fast)
                with pytest.raises(ServiceError, match="cancelled"):
                    client.wait(slow)
            assert (
                report.fingerprint()
                == Session().run(request_for(mux_tree(2))).fingerprint()
            )
        finally:
            release.set()
            default_registry().unregister("TEST-STALL")

    def test_failed_request_reports_error_and_daemon_survives(self, daemon):
        def broken(function, operator, *, options, deadline):
            raise RuntimeError("engine exploded")

        default_registry().register(EngineSpec("TEST-BROKEN", runner=broken))
        try:
            with ServiceClient(daemon.socket_path) as client:
                bad = client.submit(request_for(mux_tree(2), engines=("TEST-BROKEN",)))
                with pytest.raises(ServiceError, match="engine exploded"):
                    client.wait(bad)
                # The daemon took the failure in stride.
                good = client.run(request_for(mux_tree(2)))
            assert len(good.outputs) == 1
        finally:
            default_registry().unregister("TEST-BROKEN")

    def test_daemon_over_tcp_round_trip(self):
        """A TCP daemon serves the same bits as a Unix-socket one."""
        with ServiceThread("127.0.0.1:0", jobs=2, backend="thread") as service:
            # Port 0 resolved to the kernel's pick before start() returned.
            assert service.address != "127.0.0.1:0"
            request = request_for(ripple_carry_adder(2))
            with ServiceClient(service.address) as client:
                remote = client.run(request)
        assert remote.fingerprint() == Session().run(request).fingerprint()

    def test_wait_of_unknown_id_raises_instead_of_hanging(self, daemon):
        """Regression: wait() on a foreign id used to loop on the socket
        forever — no result frame will ever arrive for it."""
        with ServiceClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown request id"):
                client.wait(424242)
            # An id consumed by an earlier wait() can never yield another
            # result frame — waiting again must raise, not loop forever.
            request_id = client.submit(request_for(mux_tree(2)))
            client.wait(request_id)
            with pytest.raises(ServiceError, match="already waited on"):
                client.wait(request_id)

    def test_daemon_shares_one_persistent_cache_across_clients(
        self, tmp_path, socket_path
    ):
        aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=5)
        cache_dir = str(tmp_path / "cache")
        with ServiceThread(
            socket_path, jobs=2, backend="thread", cache_dir=cache_dir
        ):
            with ServiceClient(socket_path) as client:
                cold = client.run(request_for(aig))
                warm = client.run(request_for(aig))
        assert cold.schedule["persistent_saved"] >= 1
        assert warm.schedule["persistent_hits"] >= 1
        assert warm.fingerprint() == cold.fingerprint()
        snapshot = json.load(open(os.path.join(cache_dir, "cone_cache.json")))
        assert sum(len(v) for v in snapshot["contexts"].values()) >= 1


class TestProtocolErrors:
    def test_malformed_frame_gets_one_line_error_reply(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            client._sock.sendall(b"{not json}\n")
            frame = client._read_frame()
            assert frame["type"] == "error"
            assert "malformed frame" in frame["error"]
            assert "\n" not in frame["error"]
            # The connection survived the garbage.
            assert client.ping()

    def test_version_mismatch_gets_one_line_error_reply(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            client._sock.sendall(b'{"v": 99, "type": "stats", "tag": 1}\n')
            frame = client._read_frame()
            assert frame["type"] == "error"
            assert "version mismatch" in frame["error"]
            assert str(PROTOCOL_VERSION) in frame["error"]
            assert client.ping()

    def test_unknown_frame_type_rejected(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            client._sock.sendall(
                json.dumps({"v": PROTOCOL_VERSION, "type": "explode"}).encode() + b"\n"
            )
            frame = client._read_frame()
            assert frame["type"] == "error" and "unknown frame type" in frame["error"]

    def test_invalid_request_relays_validation_error(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            wire = encode_request(request_for(mux_tree(2)))
            wire["engines"] = ["NO-SUCH-ENGINE"]
            client._sock.sendall(
                json.dumps(
                    {"v": PROTOCOL_VERSION, "type": "submit", "tag": 7, "request": wire}
                ).encode()
                + b"\n"
            )
            frame = client._read_frame()
            assert frame["type"] == "error"
            assert "unknown engine" in frame["error"]
            assert frame["tag"] == 7

    def test_wrong_typed_submit_fields_get_error_reply_not_disconnect(
        self, daemon
    ):
        """engines: 5 / budgets: [1] must be one-line errors, never a
        dead connection."""
        with ServiceClient(daemon.socket_path) as client:
            for request_payload in (
                {"circuit": encode_circuit(mux_tree(2)), "operator": "or", "engines": 5},
                {
                    "circuit": encode_circuit(mux_tree(2)),
                    "operator": "or",
                    "engines": ["STEP-MG"],
                    "budgets": [1],
                },
                {"circuit": "not-a-circuit", "operator": "or", "engines": ["STEP-MG"]},
            ):
                client._sock.sendall(
                    json.dumps(
                        {
                            "v": PROTOCOL_VERSION,
                            "type": "submit",
                            "request": request_payload,
                        }
                    ).encode()
                    + b"\n"
                )
                frame = client._read_frame()
                assert frame["type"] == "error", frame
                assert "\n" not in frame["error"]
            assert client.ping()  # connection still healthy

    def test_oversized_frame_gets_tagged_error_and_connection_survives(
        self, socket_path
    ):
        """Regression: a frame past the line limit used to kill the
        connection; now it is discarded, answered (with the sniffed tag)
        and the stream keeps framing correctly."""
        with ServiceThread(
            socket_path, jobs=1, backend="serial", line_limit=2048
        ) as service:
            with ServiceClient(service.socket_path) as client:
                huge = {
                    "v": PROTOCOL_VERSION,
                    "type": "ping",
                    "pad": "x" * 4096,
                    "tag": 77,
                }
                client._sock.sendall(
                    json.dumps(huge, separators=(",", ":")).encode() + b"\n"
                )
                frame = client._read_frame()
                assert frame["type"] == "error"
                assert "2048-byte line limit" in frame["error"]
                assert frame["tag"] == 77
                # The oversized line is gone *through its newline*: the
                # connection keeps serving framed traffic.
                assert client.ping()

    def test_cancel_of_foreign_id_rejected(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown request id"):
                client.cancel(424242)

    def test_connecting_to_missing_socket_is_one_line_error(self, tmp_path):
        with pytest.raises(ServiceError, match="cannot connect"):
            ServiceClient(str(tmp_path / "nowhere.sock"))


class TestClientCli:
    def test_client_subcommand_matches_local_decompose(
        self, daemon, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.io.blif import write_blif

        path = str(tmp_path / "rca2.blif")
        write_blif(ripple_carry_adder(2), path)
        assert (
            main(
                [
                    "client",
                    path,
                    "--socket",
                    daemon.socket_path,
                    "--engine",
                    "STEP-MG",
                    "--fingerprint",
                ]
            )
            == 0
        )
        remote_out = capsys.readouterr().out
        assert main(["decompose", path, "--engine", "STEP-MG", "--fingerprint"]) == 0
        local_out = capsys.readouterr().out
        remote_fp = [l for l in remote_out.splitlines() if l.startswith("report fingerprint")]
        local_fp = [l for l in local_out.splitlines() if l.startswith("report fingerprint")]
        assert remote_fp == local_fp != []

    def test_client_against_dead_socket_is_exit_1(self, tmp_path, capsys):
        from repro.cli import main

        # "c17" is a library circuit, so the failure is the socket, not IO.
        assert (
            main(["client", "c17", "--socket", str(tmp_path / "dead.sock")]) == 1
        )
        err = capsys.readouterr().err
        assert "error:" in err and "cannot connect" in err

    def test_serve_flag_validation(self, capsys):
        from repro.cli import main

        assert main(["serve", "--socket", "/tmp/x.sock", "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err
        assert (
            main(["serve", "--socket", "/tmp/x.sock", "--cache-max-entries", "5"]) == 1
        )
        assert "--cache-dir" in capsys.readouterr().err


class TestServiceThreadLifecycle:
    def test_stale_socket_file_is_replaced(self, socket_path):
        import socket as socket_module

        # The leftover of a killed daemon: a bound-then-abandoned socket.
        stale = socket_module.socket(socket_module.AF_UNIX)
        stale.bind(socket_path)
        stale.close()
        assert os.path.exists(socket_path)
        with ServiceThread(socket_path, jobs=1, backend="serial"):
            with ServiceClient(socket_path) as client:
                assert client.ping()
        assert not os.path.exists(socket_path)

    def test_regular_file_socket_path_is_refused_and_survives(self, socket_path):
        """`step serve --socket some_regular_file` must not delete it."""
        with open(socket_path, "w") as handle:
            handle.write("precious user data")
        with pytest.raises(ServiceError, match="not a socket"):
            ServiceThread(socket_path, jobs=1, backend="serial").start()
        assert open(socket_path).read() == "precious user data"

    def test_disconnect_cancels_unfinished_requests(self, daemon):
        release = threading.Event()

        def stalling(function, operator, *, options, deadline):
            release.wait(30)
            return BiDecResult(engine="TEST-HANG", operator=operator, decomposed=False)

        default_registry().register(EngineSpec("TEST-HANG", runner=stalling))
        try:
            client = ServiceClient(daemon.socket_path)
            client.submit(request_for(ripple_carry_adder(2), engines=("TEST-HANG",)))
            client.close()  # walk away mid-request
            deadline = time.time() + 20
            session = daemon.service.session
            while time.time() < deadline:
                # Disconnect cancels the orphaned request AND forgets its
                # handle — a daemon must not accumulate abandoned state.
                if session.stats()["cancelled"] >= 1 and not session.status():
                    break
                time.sleep(0.05)
            assert session.stats()["cancelled"] >= 1
            assert session.status() == {}
        finally:
            release.set()
            default_registry().unregister("TEST-HANG")


# -- observability, quotas and backpressure (protocol v3) -----------------------


def _stall_engine(name):
    """Register a stalling engine; returns (release_event, unregister)."""
    release = threading.Event()

    def stalling(function, operator, *, options, deadline):
        release.wait(30)
        return BiDecResult(engine=name, operator=operator, decomposed=False)

    default_registry().register(EngineSpec(name, runner=stalling))
    return release, lambda: default_registry().unregister(name)


class TestStatsFrame:
    def test_stats_frame_is_versioned_and_carries_obs(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            client.run(request_for(mux_tree(2)))
            stats = client.stats()
        assert stats["stats_version"] == 2
        assert stats["protocol"] == PROTOCOL_VERSION
        assert stats["quotas"] == {
            "max_inflight_per_client": None,
            "max_pending": None,
            "cache_write_budget": None,
        }
        # Per-client accounting: this connection is c1 and submitted once.
        assert stats["clients"]["c1"]["submitted"] == 1
        assert stats["clients"]["c1"]["inflight"] == 0
        # The obs snapshot carries request-latency percentiles.
        latency = stats["obs"]["histograms"]["repro_request_latency_seconds"]
        aggregate = latency["series"][""]
        assert aggregate["count"] >= 1
        assert aggregate["p50"] is not None
        assert aggregate["p99"] >= aggregate["p50"]
        # ... a per-client series for the same span ...
        assert latency["series"]["client=c1"]["count"] >= 1
        # ... the fair-queue wait and the frame counters.
        assert (
            stats["obs"]["histograms"]["repro_fair_queue_wait_seconds"][
                "series"
            ][""]["count"]
            >= 1
        )
        frames = stats["obs"]["counters"]["repro_service_frames_total"]
        assert frames["values"]["type=submit"] == 1

    def test_stats_frame_is_json_schema_checkable(self, daemon, tmp_path):
        """The CI artifact path: a saved stats frame passes
        ``compare_bench.py --stats``."""
        import subprocess
        import sys

        with ServiceClient(daemon.socket_path) as client:
            client.run(request_for(mux_tree(2)))
            stats = client.stats()
        path = tmp_path / "stats_frame.json"
        path.write_text(json.dumps(stats))
        proc = subprocess.run(
            [sys.executable, "benchmarks/compare_bench.py", "--stats", str(path)],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestQuotasAndBackpressure:
    def test_over_quota_submit_gets_typed_recoverable_backpressure(
        self, socket_path
    ):
        from repro.errors import Backpressure
        from repro.obs import QuotaPolicy

        release, unregister = _stall_engine("TEST-BP-STALL")
        try:
            with ServiceThread(
                socket_path,
                jobs=1,
                backend="thread",
                quota=QuotaPolicy(max_inflight_per_client=1),
            ) as service:
                with ServiceClient(service.address) as client:
                    slow = client.submit(
                        request_for(
                            ripple_carry_adder(2), engines=("TEST-BP-STALL",)
                        )
                    )
                    with pytest.raises(Backpressure) as excinfo:
                        client.submit(request_for(mux_tree(2)))
                    assert "retry" in str(excinfo.value)
                    # Recoverable: the connection (and the in-flight
                    # request) survive the rejection.
                    release.set()
                    client.wait(slow)
                    report = client.run(request_for(mux_tree(2)))
                    assert len(report.outputs) == 1
                    stats = client.stats()
                    assert stats["clients"]["c1"]["rejected"] == 1
                    backpressure = stats["obs"]["counters"][
                        "repro_service_backpressure_total"
                    ]
                    assert (
                        backpressure["values"]["quota=max_inflight_per_client"]
                        == 1
                    )
        finally:
            release.set()
            unregister()

    def test_max_pending_bounds_the_accept_queue_across_clients(
        self, socket_path
    ):
        from repro.errors import Backpressure
        from repro.obs import QuotaPolicy

        release, unregister = _stall_engine("TEST-PENDING-STALL")
        try:
            with ServiceThread(
                socket_path,
                jobs=1,
                backend="thread",
                quota=QuotaPolicy(max_pending=1),
            ) as service:
                with ServiceClient(service.address) as holder:
                    holder.submit(
                        request_for(
                            ripple_carry_adder(2),
                            engines=("TEST-PENDING-STALL",),
                        )
                    )
                    with ServiceClient(service.address) as other:
                        # A DIFFERENT connection is refused: the bound is
                        # service-wide, not per client.
                        with pytest.raises(Backpressure, match="accept queue"):
                            other.submit(request_for(mux_tree(2)))
                    release.set()
        finally:
            release.set()
            unregister()

    def test_rejected_client_never_perturbs_survivors_fingerprint(
        self, socket_path
    ):
        """Acceptance: requests served next to throttled clients produce
        bit-identical fingerprints to a serial local run."""
        from repro.errors import Backpressure
        from repro.obs import QuotaPolicy

        reference = Session().run(request_for(mux_tree(3))).fingerprint()
        release, unregister = _stall_engine("TEST-ISO-STALL")
        try:
            with ServiceThread(
                socket_path,
                jobs=2,
                backend="thread",
                quota=QuotaPolicy(max_inflight_per_client=1),
            ) as service:
                with ServiceClient(service.address) as noisy:
                    noisy.submit(
                        request_for(
                            ripple_carry_adder(2), engines=("TEST-ISO-STALL",)
                        )
                    )
                    rejections = 0
                    with ServiceClient(service.address) as survivor:
                        for _ in range(5):
                            # The noisy client hammers past its quota while
                            # the survivor's request runs.
                            with pytest.raises(Backpressure):
                                noisy.submit(request_for(mux_tree(2)))
                            rejections += 1
                        report = survivor.run(request_for(mux_tree(3)))
                    release.set()
                    assert rejections == 5
                    assert report.fingerprint() == reference
        finally:
            release.set()
            unregister()

    def test_cache_write_budget_throttles_writes_not_results(self, tmp_path):
        from repro.obs import QuotaPolicy

        socket_path = str(tmp_path / "repro.sock")
        cache_dir = str(tmp_path / "cones")
        reference = Session().run(request_for(mux_tree(3))).fingerprint()
        with ServiceThread(
            socket_path,
            jobs=1,
            backend="thread",
            cache_dir=cache_dir,
            quota=QuotaPolicy(cache_write_budget=1),
        ) as service:
            with ServiceClient(service.address) as client:
                first = client.run(request_for(ripple_carry_adder(2)))
                # The first run wrote persistent entries (budget spent).
                assert first.schedule["persistent_saved"] >= 1
                second = client.run(request_for(mux_tree(3)))
                # Throttled: the second ran WITHOUT the persistent cache —
                # no persistent_* schedule keys — but its report is
                # fingerprint-identical to the serial local reference.
                assert "persistent_saved" not in second.schedule
                assert second.fingerprint() == reference
                stats = client.stats()
                assert stats["clients"]["c1"]["cache_throttled"] == 1
                assert stats["clients"]["c1"]["persistent_saved"] >= 1


class TestClientTimeouts:
    def _fake_server(self, script):
        """A one-connection TCP server speaking ``script(filelike)``."""
        import socket as socket_module

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def serve():
            conn, _ = listener.accept()
            stream = conn.makefile("rwb")
            try:
                script(stream)
            finally:
                try:
                    stream.close()
                except OSError:
                    pass
                conn.close()
                listener.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return f"127.0.0.1:{port}", thread

    def test_wait_timeout_raises_instead_of_hanging(self, socket_path):
        """Regression: a hung daemon used to block wait() forever."""
        from repro.service.protocol import encode_frame

        hold = threading.Event()

        def hung_daemon(stream):
            stream.write(
                encode_frame(
                    {"type": "hello", "v": PROTOCOL_VERSION, "server": "x"}
                )
            )
            stream.flush()
            line = stream.readline()  # the submit frame
            frame = json.loads(line)
            stream.write(
                encode_frame(
                    {
                        "type": "event",
                        "v": PROTOCOL_VERSION,
                        "id": 1,
                        "name": "m",
                        "state": "queued",
                        "tag": frame.get("tag"),
                    }
                )
            )
            stream.flush()
            hold.wait(30)  # ... and never a result frame

        address, thread = self._fake_server(hung_daemon)
        try:
            with ServiceClient(address) as client:
                request_id = client.submit(request_for(mux_tree(2)))
                started = time.time()
                with pytest.raises(ServiceError, match="timed out"):
                    client.wait(request_id, timeout=0.3)
                assert time.time() - started < 10
        finally:
            hold.set()
            thread.join(timeout=5)

    def test_wait_raises_on_server_eof(self):
        from repro.service.protocol import encode_frame

        def vanishing_daemon(stream):
            stream.write(
                encode_frame(
                    {"type": "hello", "v": PROTOCOL_VERSION, "server": "x"}
                )
            )
            stream.flush()
            line = stream.readline()
            frame = json.loads(line)
            stream.write(
                encode_frame(
                    {
                        "type": "event",
                        "v": PROTOCOL_VERSION,
                        "id": 1,
                        "name": "m",
                        "state": "queued",
                        "tag": frame.get("tag"),
                    }
                )
            )
            stream.flush()
            # close immediately: EOF mid-wait

        address, thread = self._fake_server(vanishing_daemon)
        try:
            with ServiceClient(address) as client:
                request_id = client.submit(request_for(mux_tree(2)))
                with pytest.raises(ServiceError, match="closed the connection"):
                    client.wait(request_id, timeout=5)
        finally:
            thread.join(timeout=5)

    def test_events_timeout_raises(self, daemon):
        release, unregister = _stall_engine("TEST-EV-STALL")
        try:
            with ServiceClient(daemon.socket_path) as client:
                request_id = client.submit(
                    request_for(
                        ripple_carry_adder(2), engines=("TEST-EV-STALL",)
                    )
                )
                with pytest.raises(ServiceError, match="timed out"):
                    client.events(request_id, timeout=0.3)
                release.set()
                client.wait(request_id)
        finally:
            release.set()
            unregister()

    def test_wait_timeout_leaves_the_connection_usable(self, daemon):
        """The per-call timeout must not poison later unbounded waits."""
        release, unregister = _stall_engine("TEST-TO-STALL")
        try:
            with ServiceClient(daemon.socket_path) as client:
                slow = client.submit(
                    request_for(ripple_carry_adder(2), engines=("TEST-TO-STALL",))
                )
                with pytest.raises(ServiceError, match="timed out"):
                    client.wait(slow, timeout=0.3)
                release.set()
                report = client.wait(slow)  # unbounded wait still works
                assert report.outputs
        finally:
            release.set()
            unregister()

    def test_nonpositive_timeout_rejected(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            request_id = client.submit(request_for(mux_tree(2)))
            with pytest.raises(ServiceError, match="positive"):
                client.wait(request_id, timeout=0)
            client.wait(request_id)
