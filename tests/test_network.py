"""Tests for recursive bi-decomposition into gate networks."""

import pytest

from repro.aig.function import BooleanFunction
from repro.circuits.generators import decomposable_by_construction, parity_tree
from repro.core.engine import EngineOptions
from repro.core.network import DecompositionNode, RecursiveDecomposer, network_to_aig
from repro.errors import DecompositionError


def _decomposer(**kwargs):
    options = EngineOptions(output_timeout=20.0)
    return RecursiveDecomposer(options=options, **kwargs)


class TestRecursiveDecomposer:
    def test_parity_becomes_xor_tree(self):
        f = BooleanFunction.from_output(parity_tree(6), "p")
        tree = _decomposer(operators=("xor",)).decompose(f)
        assert not tree.is_leaf
        assert tree.operator == "xor"
        assert tree.max_leaf_support() <= 2
        assert tree.gate_count() >= 2
        assert tree.to_function().semantically_equal(f)

    def test_or_constructed_instance(self):
        aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=61)
        f = BooleanFunction.from_output(aig, "f")
        tree = _decomposer().decompose(f)
        assert tree.to_function().semantically_equal(f)
        assert tree.max_leaf_support() <= max(2, f.num_inputs)

    def test_non_decomposable_function_is_a_leaf(self):
        # 2-input XOR with only OR/AND allowed cannot be decomposed further.
        f = BooleanFunction.from_truth_table(0b0110, 2)
        tree = _decomposer(operators=("or", "and"), max_leaf_inputs=1).decompose(f)
        assert tree.is_leaf
        assert tree.gate_count() == 0
        assert tree.depth() == 0

    def test_small_functions_not_decomposed(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        tree = _decomposer(max_leaf_inputs=3).decompose(f)
        assert tree.is_leaf

    def test_max_depth_bounds_recursion(self):
        f = BooleanFunction.from_output(parity_tree(6), "p")
        tree = _decomposer(operators=("xor",), max_depth=1).decompose(f)
        assert tree.depth() <= 1
        assert tree.to_function().semantically_equal(f)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DecompositionError):
            RecursiveDecomposer(max_leaf_inputs=0)
        with pytest.raises(DecompositionError):
            RecursiveDecomposer(engine="NOPE")
        with pytest.raises(DecompositionError):
            RecursiveDecomposer(operators=("nand",))

    def test_heuristic_engine_also_works(self):
        aig, *_ = decomposable_by_construction("and", 3, 3, 0, seed=67)
        f = BooleanFunction.from_output(aig, "f")
        tree = _decomposer(engine="STEP-MG").decompose(f)
        assert tree.to_function().semantically_equal(f)


class TestNetworkToAig:
    def test_flattened_network_is_equivalent(self):
        f = BooleanFunction.from_output(parity_tree(5), "p")
        tree = _decomposer(operators=("xor",)).decompose(f)
        network = network_to_aig(tree, name="parity_net")
        rebuilt = BooleanFunction.from_output(network, "f")
        assert rebuilt.semantically_equal(f)

    def test_flattened_network_for_leaf_tree(self):
        f = BooleanFunction.from_truth_table(0b1000, 2)
        tree = DecompositionNode(f)
        network = network_to_aig(tree)
        rebuilt = BooleanFunction.from_output(network, "f")
        assert rebuilt.semantically_equal(f)
