"""Tests for BDD-based bi-decomposition (also the oracle for the SAT checks)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.function import BooleanFunction
from repro.bdd.bidec_bdd import (
    bdd_and_decompose,
    bdd_check_decomposable,
    bdd_or_decompose,
    bdd_xor_decompose,
)
from repro.circuits.generators import decomposable_by_construction, parity_tree
from repro.errors import DecompositionError

from tests.reference import decomposable as reference_decomposable


def _function_of(table, n):
    return BooleanFunction.from_truth_table(table, n)


class TestKnownCases:
    def test_or_of_disjoint_blocks(self):
        # f = (x0 AND x1) OR (x2 AND x3) is OR-decomposable with XA = {x0, x1}.
        table = 0
        for pattern in range(16):
            bits = [(pattern >> i) & 1 for i in range(4)]
            if (bits[0] and bits[1]) or (bits[2] and bits[3]):
                table |= 1 << pattern
        f = _function_of(table, 4)
        names = f.input_names
        assert bdd_check_decomposable(f, "or", names[:2], names[2:], [])
        aig, xa, xb, xc = decomposable_by_construction("or", 2, 2, 0, seed=1)
        g = BooleanFunction.from_output(aig, "f")
        assert bdd_check_decomposable(g, "or", xa, xb, xc)

    def test_parity_is_xor_decomposable_everywhere(self):
        f = BooleanFunction.from_output(parity_tree(4), "p")
        names = f.input_names
        assert bdd_check_decomposable(f, "xor", names[:2], names[2:], [])
        assert bdd_check_decomposable(f, "xor", [names[0]], names[1:], [])

    def test_and_case_via_duality(self):
        aig, xa, xb, xc = decomposable_by_construction("and", 2, 2, 1, seed=5)
        f = BooleanFunction.from_output(aig, "f")
        assert bdd_check_decomposable(f, "and", xa, xb, xc)

    def test_invalid_partition_rejected(self):
        f = _function_of(0b0110, 2)
        with pytest.raises(DecompositionError):
            bdd_check_decomposable(f, "or", ["x0"], ["x0"], ["x1"])
        with pytest.raises(DecompositionError):
            bdd_check_decomposable(f, "or", ["x0"], ["zzz"], [])

    def test_unknown_operator_rejected(self):
        f = _function_of(0b0110, 2)
        with pytest.raises(DecompositionError):
            bdd_check_decomposable(f, "nand", ["x0"], ["x1"], [])


class TestExtraction:
    def _verify(self, f, fa, fb, operator):
        combined = fa.combine(fb, operator)
        assert combined.semantically_equal(f)

    def test_or_extraction(self):
        aig, xa, xb, xc = decomposable_by_construction("or", 2, 2, 1, seed=2)
        f = BooleanFunction.from_output(aig, "f")
        pair = bdd_or_decompose(f, xa, xb, xc)
        assert pair is not None
        self._verify(f, pair[0], pair[1], "or")

    def test_and_extraction(self):
        aig, xa, xb, xc = decomposable_by_construction("and", 2, 2, 1, seed=3)
        f = BooleanFunction.from_output(aig, "f")
        pair = bdd_and_decompose(f, xa, xb, xc)
        assert pair is not None
        self._verify(f, pair[0], pair[1], "and")

    def test_xor_extraction(self):
        f = BooleanFunction.from_output(parity_tree(4), "p")
        names = f.input_names
        pair = bdd_xor_decompose(f, names[:2], names[2:], [])
        assert pair is not None
        self._verify(f, pair[0], pair[1], "xor")

    def test_non_decomposable_returns_none(self):
        # 2-input XOR is not OR-decomposable with disjoint singletons.
        f = _function_of(0b0110, 2)
        assert bdd_or_decompose(f, ["x0"], ["x1"], []) is None

    def test_extracted_functions_respect_partition(self):
        aig, xa, xb, xc = decomposable_by_construction("or", 3, 2, 1, seed=9)
        f = BooleanFunction.from_output(aig, "f")
        pair = bdd_or_decompose(f, xa, xb, xc)
        assert pair is not None
        fa, fb = pair
        assert set(fa.support_names()) <= set(xa) | set(xc)
        assert set(fb.support_names()) <= set(xb) | set(xc)


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.sampled_from(["or", "and", "xor"]),
        st.integers(min_value=0, max_value=80),
    )
    def test_matches_truth_table_reference(self, table, operator, partition_seed):
        n = 4
        f = _function_of(table, n)
        positions = list(range(n))
        # Derive a pseudo-random non-trivial partition from the seed.
        xa = [p for p in positions if (partition_seed >> p) & 1]
        xb = [p for p in positions if not ((partition_seed >> p) & 1) and ((partition_seed >> (p + 4)) & 1)]
        if not xa or not xb:
            return
        xc = [p for p in positions if p not in xa and p not in xb]
        names = f.input_names
        expected = reference_decomposable(table, n, operator, xa, xb)
        actual = bdd_check_decomposable(
            f,
            operator,
            [names[i] for i in xa],
            [names[i] for i in xb],
            [names[i] for i in xc],
        )
        assert actual == expected
