"""Tests for the SAT decomposability checks (Proposition 1 and friends).

The checks are validated against the truth-table reference oracle and the
BDD implementation on random functions and on structured known cases.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.function import BooleanFunction
from repro.circuits.generators import decomposable_by_construction, parity_tree
from repro.core.checks import (
    RelaxationChecker,
    check_and_decomposable,
    check_decomposable,
    check_or_decomposable,
    check_xor_decomposable,
)
from repro.core.partition import VariablePartition
from repro.errors import DecompositionError

from tests.reference import decomposable as reference_decomposable


def _partition_from_positions(names, xa, xb):
    xc = [i for i in range(len(names)) if i not in set(xa) | set(xb)]
    return VariablePartition(
        tuple(names[i] for i in xa),
        tuple(names[i] for i in xb),
        tuple(names[i] for i in xc),
    )


class TestKnownCases:
    def test_or_of_disjoint_conjunctions(self):
        # f = (x0 AND x1) OR (x2 AND x3)
        table = 0
        for pattern in range(16):
            bits = [(pattern >> i) & 1 for i in range(4)]
            if (bits[0] and bits[1]) or (bits[2] and bits[3]):
                table |= 1 << pattern
        f = BooleanFunction.from_truth_table(table, 4)
        names = f.input_names
        good = VariablePartition((names[0], names[1]), (names[2], names[3]), ())
        assert check_or_decomposable(f, good)
        # The same partition is not AND-decomposable.
        assert not check_and_decomposable(f, good)

    def test_and_of_disjoint_disjunctions(self):
        table = 0
        for pattern in range(16):
            bits = [(pattern >> i) & 1 for i in range(4)]
            if (bits[0] or bits[1]) and (bits[2] or bits[3]):
                table |= 1 << pattern
        f = BooleanFunction.from_truth_table(table, 4)
        names = f.input_names
        good = VariablePartition((names[0], names[1]), (names[2], names[3]), ())
        assert check_and_decomposable(f, good)
        assert not check_or_decomposable(f, good)

    def test_parity_xor_everywhere(self):
        f = BooleanFunction.from_output(parity_tree(4), "p")
        names = f.input_names
        for split in range(1, 4):
            partition = VariablePartition(tuple(names[:split]), tuple(names[split:]), ())
            assert check_xor_decomposable(f, partition)

    def test_two_input_xor_not_or_decomposable(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        names = f.input_names
        partition = VariablePartition((names[0],), (names[1],), ())
        assert not check_or_decomposable(f, partition)
        assert check_xor_decomposable(f, partition)

    def test_trivial_partition_rejected(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        names = f.input_names
        with pytest.raises(DecompositionError):
            check_decomposable(f, "or", VariablePartition((), tuple(names), ()))

    def test_single_input_function_rejected(self):
        f = BooleanFunction.from_truth_table(0b10, 1)
        with pytest.raises(DecompositionError):
            RelaxationChecker(f, "or")

    def test_constructed_instances(self):
        for operator in ("or", "and", "xor"):
            aig, xa, xb, xc = decomposable_by_construction(operator, 2, 2, 1, seed=21)
            f = BooleanFunction.from_output(aig, "f")
            present = set(f.input_names)
            partition = VariablePartition(
                tuple(n for n in xa if n in present),
                tuple(n for n in xb if n in present),
                tuple(n for n in xc if n in present),
            )
            if partition.is_trivial:
                continue
            assert check_decomposable(f, operator, partition)


class TestRelaxationChecker:
    def test_incremental_reuse_over_partitions(self):
        aig, xa, xb, xc = decomposable_by_construction("or", 2, 2, 1, seed=4)
        f = BooleanFunction.from_output(aig, "f")
        checker = RelaxationChecker(f, "or")
        names = checker.variables
        partitions = [
            VariablePartition((names[0],), (names[1],), tuple(names[2:])),
            VariablePartition((names[1],), (names[0],), tuple(names[2:])),
            VariablePartition(tuple(names[:2]), tuple(names[2:4]), tuple(names[4:])),
        ]
        results = [checker.check_partition(p).decomposable for p in partitions]
        assert all(isinstance(r, bool) for r in results)
        assert checker.sat_calls == len(partitions)

    def test_witness_difference_sets_on_sat(self):
        # 2-input XOR is not OR-decomposable: the witness must differ on at
        # least one relaxed variable per copy.
        f = BooleanFunction.from_truth_table(0b0110, 2)
        checker = RelaxationChecker(f, "or")
        names = checker.variables
        outcome = checker.check_partition(
            VariablePartition((names[0],), (names[1],), ())
        )
        assert outcome.decomposable is False
        assert outcome.witness_diff_a <= {names[0]}
        assert outcome.witness_diff_b <= {names[1]}
        assert outcome.witness_diff_a or outcome.witness_diff_b

    def test_needed_equalities_on_unsat(self):
        aig, xa, xb, xc = decomposable_by_construction("or", 2, 2, 2, seed=8)
        f = BooleanFunction.from_output(aig, "f")
        checker = RelaxationChecker(f, "or")
        present = set(f.input_names)
        partition = VariablePartition(
            tuple(n for n in xa if n in present),
            tuple(n for n in xb if n in present),
            tuple(n for n in xc if n in present),
        )
        if partition.is_trivial:
            pytest.skip("degenerate random instance")
        outcome = checker.check_partition(partition)
        assert outcome.decomposable is True
        # Needed equalities can only mention variables whose equality was
        # actually assumed (i.e. variables not relaxed on that side).
        assert outcome.needed_alpha <= set(partition.xb) | set(partition.xc)
        assert outcome.needed_beta <= set(partition.xa) | set(partition.xc)

    def test_partition_must_match_inputs(self):
        f = BooleanFunction.from_truth_table(0b0110, 2)
        checker = RelaxationChecker(f, "or")
        with pytest.raises(DecompositionError):
            checker.check_partition(VariablePartition(("x0",), ("zzz",), ()))


class TestAgainstReference:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.sampled_from(["or", "and", "xor"]),
        st.integers(min_value=0, max_value=255),
    )
    def test_random_functions_match_reference(self, table, operator, partition_code):
        n = 4
        f = BooleanFunction.from_truth_table(table, n)
        names = f.input_names
        assignment = [(partition_code >> (2 * i)) & 3 for i in range(n)]
        xa = [i for i, a in enumerate(assignment) if a == 0]
        xb = [i for i, a in enumerate(assignment) if a == 1]
        if not xa or not xb:
            return
        expected = reference_decomposable(table, n, operator, xa, xb)
        partition = _partition_from_positions(names, xa, xb)
        assert check_decomposable(f, operator, partition) == expected

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**8 - 1))
    def test_or_check_agrees_with_bdd(self, table):
        from repro.bdd.bidec_bdd import bdd_check_decomposable

        f = BooleanFunction.from_truth_table(table, 3)
        names = f.input_names
        partition = VariablePartition((names[0],), (names[1],), (names[2],))
        sat_answer = check_or_decomposable(f, partition)
        bdd_answer = bdd_check_decomposable(
            f, "or", [names[0]], [names[1]], [names[2]]
        )
        assert sat_answer == bdd_answer
