"""Tests for the cardinality-constraint encodings.

Each encoding is checked exhaustively for small sizes: the CNF must accept
exactly the assignments whose true-literal count respects the bound.
"""

from itertools import product

import pytest

from repro.errors import CnfError
from repro.sat.cardinality import (
    at_least_k,
    at_least_one,
    at_most_k,
    at_most_one,
    exactly_k,
    totalizer_outputs,
)
from repro.sat.cnf import CNF
from repro.sat.solver import Solver


def _accepted_counts(build, n):
    """Which true-counts admit a satisfying extension of the encoding."""
    cnf = CNF()
    lits = cnf.new_vars(n)
    build(cnf, lits)
    accepted = set()
    for bits in product([False, True], repeat=n):
        solver = Solver()
        solver.add_cnf(cnf)
        assumptions = [l if v else -l for l, v in zip(lits, bits)]
        if solver.solve(assumptions=assumptions).status:
            accepted.add(sum(bits))
    return accepted


class TestAtLeastOne:
    def test_accepts_counts_ge_one(self):
        accepted = _accepted_counts(lambda cnf, lits: at_least_one(cnf, lits), 3)
        assert accepted == {1, 2, 3}

    def test_empty_set_rejected(self):
        with pytest.raises(CnfError):
            at_least_one(CNF(), [])


class TestAtMostOne:
    def test_accepts_counts_le_one(self):
        accepted = _accepted_counts(lambda cnf, lits: at_most_one(cnf, lits), 4)
        assert accepted == {0, 1}

    def test_single_literal_unconstrained(self):
        accepted = _accepted_counts(lambda cnf, lits: at_most_one(cnf, lits), 1)
        assert accepted == {0, 1}


class TestAtMostK:
    @pytest.mark.parametrize("encoding", ["seqcounter", "totalizer"])
    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2), (5, 3), (4, 4)])
    def test_exact_semantics(self, encoding, n, k):
        accepted = _accepted_counts(
            lambda cnf, lits: at_most_k(cnf, lits, k, encoding=encoding), n
        )
        assert accepted == set(range(0, min(k, n) + 1))

    def test_negative_bound_unsatisfiable(self):
        cnf = CNF()
        lits = cnf.new_vars(2)
        at_most_k(cnf, lits, -1)
        solver = Solver()
        solver.add_cnf(cnf)
        assert solver.solve().status is False

    def test_bound_larger_than_set_is_noop(self):
        cnf = CNF()
        lits = cnf.new_vars(2)
        at_most_k(cnf, lits, 5)
        assert len(cnf) == 0

    def test_unknown_encoding_rejected(self):
        cnf = CNF()
        lits = cnf.new_vars(3)
        with pytest.raises(CnfError):
            at_most_k(cnf, lits, 1, encoding="magic")

    def test_pairwise_alias(self):
        accepted = _accepted_counts(
            lambda cnf, lits: at_most_k(cnf, lits, 1, encoding="pairwise"), 3
        )
        assert accepted == {0, 1}


class TestAtLeastK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (4, 4)])
    def test_exact_semantics(self, n, k):
        accepted = _accepted_counts(lambda cnf, lits: at_least_k(cnf, lits, k), n)
        assert accepted == set(range(k, n + 1))

    def test_k_zero_is_noop(self):
        cnf = CNF()
        lits = cnf.new_vars(3)
        at_least_k(cnf, lits, 0)
        assert len(cnf) == 0

    def test_k_above_size_unsatisfiable(self):
        cnf = CNF()
        lits = cnf.new_vars(2)
        at_least_k(cnf, lits, 3)
        solver = Solver()
        solver.add_cnf(cnf)
        assert solver.solve().status is False


class TestExactlyK:
    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2)])
    def test_exact_semantics(self, n, k):
        accepted = _accepted_counts(lambda cnf, lits: exactly_k(cnf, lits, k), n)
        assert accepted == {k}


class TestTotalizerOutputs:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_outputs_are_exact_unary_counts(self, n):
        cnf = CNF()
        lits = cnf.new_vars(n)
        outputs = totalizer_outputs(cnf, lits)
        assert len(outputs) == n
        for bits in product([False, True], repeat=n):
            count = sum(bits)
            assumptions = [l if v else -l for l, v in zip(lits, bits)]
            for index, out in enumerate(outputs):
                expected = count >= index + 1
                solver = Solver()
                solver.add_cnf(cnf)
                wrong = -out if expected else out
                assert solver.solve(assumptions=assumptions + [wrong]).status is False

    def test_empty_input(self):
        assert totalizer_outputs(CNF(), []) == []
