"""Tests for the static analyzer (``repro.analysis`` / ``step lint``).

Fixture snippets are written under per-test tmp directories whose layout
mirrors the package (``core/``, ``service/``, ``utils/`` …) so rule
scoping resolves exactly as it does over ``src/repro``.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.analysis import (
    RULES,
    analyze_paths,
    load_baseline,
    module_path_for,
    parse_suppressions,
    render_json,
    render_text,
    write_baseline,
)
from repro.cli import main
from repro.errors import ReproError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPO_SRC = os.path.join(REPO_ROOT, "src", "repro")


def write_module(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def rules_fired(tmp_path, relpath, source):
    write_module(tmp_path, relpath, source)
    report = analyze_paths([str(tmp_path)])
    return [finding.rule for finding in report.findings]


class TestScoping:
    def test_module_path_below_repro_package(self):
        assert (
            module_path_for(os.path.join(REPO_SRC, "core", "scheduler.py"), REPO_SRC)
            == "core/scheduler.py"
        )

    def test_module_path_relative_to_scan_root(self, tmp_path):
        path = write_module(tmp_path, "core/x.py", "x = 1\n")
        assert module_path_for(str(path), str(tmp_path)) == "core/x.py"

    def test_rule_catalog_is_scoped(self):
        assert RULES["DET-SET-ITER"].applies_to("core/scheduler.py")
        assert not RULES["DET-SET-ITER"].applies_to("sat/solver.py")
        assert RULES["DET-WALLCLOCK"].applies_to("sat/solver.py")
        assert not RULES["DET-WALLCLOCK"].applies_to("utils/timer.py")
        assert not RULES["DET-RNG"].applies_to("utils/rng.py")
        assert RULES["ASYNC-BLOCKING"].applies_to("api/aio.py")
        assert not RULES["ASYNC-BLOCKING"].applies_to("api/session.py")


class TestDetSetIter:
    def test_for_over_set_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            pending = {1, 2, 3}
            for item in pending:
                print(item)
            """,
        )
        assert fired == ["DET-SET-ITER"]

    def test_sorted_set_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            pending = {1, 2, 3}
            for item in sorted(pending):
                print(item)
            """,
        )
        assert fired == []

    def test_list_wrapper_does_not_launder(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            pending = set()
            for item in list(pending):
                print(item)
            """,
        )
        assert fired == ["DET-SET-ITER"]

    def test_comprehension_over_set_call_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            names = [str(n) for n in set("abc")]
            """,
        )
        assert fired == ["DET-SET-ITER"]

    def test_annotated_attribute_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            from typing import Set

            class Tracker:
                def __init__(self) -> None:
                    self.live: Set[str] = set()

                def dump(self):
                    return [name for name in self.live]
            """,
        )
        assert fired == ["DET-SET-ITER"]

    def test_set_building_consumers_are_clean(self, tmp_path):
        # Membership, unordered reductions and set-to-set comprehensions
        # cannot leak iteration order.
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            pending = {1, 2, 3}
            ok = 2 in pending
            total = sum(x for x in pending)
            biggest = max(pending)
            doubled = {x * 2 for x in pending}
            """,
        )
        assert fired == []

    def test_out_of_scope_tree_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "sat/x.py",
            """
            for item in {1, 2}:
                print(item)
            """,
        )
        assert fired == []


class TestDetWallclock:
    def test_time_call_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            import time

            started = time.time()
            """,
        )
        assert fired == ["DET-WALLCLOCK"]

    def test_from_import_alias_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "sat/x.py",
            """
            from time import perf_counter

            t0 = perf_counter()
            """,
        )
        assert "DET-WALLCLOCK" in fired

    def test_bare_reference_fires(self, tmp_path):
        # time.perf_counter passed as a default_factory is still a clock.
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            import time
            from dataclasses import dataclass, field

            @dataclass
            class D:
                start: float = field(default_factory=time.perf_counter)
            """,
        )
        assert "DET-WALLCLOCK" in fired

    def test_timer_module_is_exempt(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "utils/timer.py",
            """
            import time

            now = time.perf_counter()
            """,
        )
        assert fired == []

    def test_sleep_is_not_a_clock_read(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            import time

            def nap():
                time.sleep(0.01)
            """,
        )
        assert fired == []


class TestDetRng:
    def test_random_module_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            import random

            pick = random.choice([1, 2])
            """,
        )
        assert fired == ["DET-RNG"]

    def test_os_urandom_and_from_import_fire(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            import os
            from random import randint

            salt = os.urandom(8)
            n = randint(0, 10)
            """,
        )
        assert fired == ["DET-RNG", "DET-RNG"]

    def test_rng_module_is_exempt(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "utils/rng.py",
            """
            import random

            def deterministic_rng(seed):
                return random.Random(seed)
            """,
        )
        assert fired == []


class TestDetIdKey:
    def test_id_call_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            seen = {id(object())}
            """,
        )
        assert "DET-ID-KEY" in fired

    def test_id_attribute_and_method_are_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "api/x.py",
            """
            class Handle:
                @property
                def id(self):
                    return 7

            def read(handle):
                return handle.id
            """,
        )
        assert fired == []


class TestAsyncBlocking:
    def test_time_sleep_in_coroutine_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            import time

            async def pump():
                time.sleep(1)
            """,
        )
        assert fired == ["ASYNC-BLOCKING"]

    def test_open_and_sync_clients_fire(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            from repro.service import ServiceClient

            async def relay(path):
                data = open(path).read()
                client = ServiceClient("/tmp/x.sock")
                return data, client
            """,
        )
        assert fired == ["ASYNC-BLOCKING", "ASYNC-BLOCKING"]

    def test_sync_function_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            import time

            def warmup():
                time.sleep(0.1)
            """,
        )
        assert fired == []

    def test_nested_sync_def_is_clean(self, tmp_path):
        # A sync helper *defined* inside a coroutine runs off-loop (it is
        # typically shipped to run_in_executor); its body may block.
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            import time

            async def pump(loop):
                def blocking():
                    time.sleep(1)
                await loop.run_in_executor(None, blocking)
            """,
        )
        assert fired == []

    def test_out_of_scope_coroutine_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            import time

            async def tick():
                time.sleep(1)
            """,
        )
        assert fired == []


class TestAsyncLockAwait:
    def test_await_under_threading_lock_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            async def flush(self):
                with self._lock:
                    await self.drain()
            """,
        )
        assert fired == ["ASYNC-LOCK-AWAIT"]

    def test_async_with_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            async def flush(self):
                async with self._lock:
                    await self.drain()
            """,
        )
        assert fired == []

    def test_await_after_lock_release_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            async def flush(self):
                with self._lock:
                    payload = self.render()
                await self.send(payload)
            """,
        )
        assert fired == []

    def test_coroutine_defined_under_lock_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            def build(self):
                with self._lock:
                    async def later():
                        await self.drain()
                    return later
            """,
        )
        assert fired == []


class TestErrRules:
    def test_bare_except_fires_anywhere(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "sat/x.py",
            """
            try:
                risky()
            except:
                pass
            """,
        )
        assert "ERR-BARE-EXCEPT" in fired

    def test_swallowed_exception_fires_in_scope(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            try:
                risky()
            except Exception:
                pass
            """,
        )
        assert fired == ["ERR-SWALLOW"]

    def test_handled_exception_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            try:
                risky()
            except Exception as exc:
                ticket.mark_failed(str(exc))
            """,
        )
        assert fired == []

    def test_narrow_pass_is_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            try:
                risky()
            except (ConnectionResetError, BrokenPipeError):
                pass
            """,
        )
        assert fired == []

    def test_broad_member_of_tuple_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "api/x.py",
            """
            try:
                risky()
            except (ValueError, Exception):
                continue
            """,
        )
        # `continue` outside a loop is also a syntax error in real code;
        # keep the snippet legal:
        assert fired == ["PARSE"] or fired == ["ERR-SWALLOW"]

    def test_untagged_error_frame_fires(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            PROTOCOL_VERSION = 1

            async def reply(send, exc):
                await send({"type": "error", "v": PROTOCOL_VERSION, "error": str(exc)})
            """,
        )
        assert fired == ["ERR-UNTAGGED-REPLY"]

    def test_tagged_helper_and_tag_key_are_clean(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "service/x.py",
            """
            PROTOCOL_VERSION = 1

            async def reply(self, send, exc, tag):
                await send(
                    self._tagged(
                        {"type": "error", "v": PROTOCOL_VERSION, "error": str(exc)},
                        tag,
                    )
                )
                await send(
                    {
                        "type": "error",
                        "v": PROTOCOL_VERSION,
                        "error": str(exc),
                        "tag": tag,
                    }
                )
            """,
        )
        assert fired == []


class TestSuppressions:
    def test_trailing_suppression_waives_finding(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            pending = {1, 2}
            for item in pending:  # repro: allow[DET-SET-ITER] order feeds nothing observable
                print(item)
            """,
        )
        assert fired == []

    def test_standalone_suppression_covers_next_code_line(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            pending = {1, 2}
            # repro: allow[DET-SET-ITER] order feeds nothing observable
            for item in pending:
                print(item)
            """,
        )
        assert fired == []

    def test_wrong_rule_id_does_not_waive(self, tmp_path):
        fired = rules_fired(
            tmp_path,
            "core/x.py",
            """
            pending = {1, 2}
            for item in pending:  # repro: allow[DET-WALLCLOCK] mismatched rule
                print(item)
            """,
        )
        assert "DET-SET-ITER" in fired
        assert "SUP-UNUSED" in fired

    def test_missing_reason_is_an_error(self, tmp_path):
        write_module(
            tmp_path,
            "core/x.py",
            """
            pending = {1, 2}
            for item in pending:  # repro: allow[DET-SET-ITER]
                print(item)
            """,
        )
        report = analyze_paths([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["SUP-REASON"]
        assert report.blocking

    def test_unused_suppression_warns_without_blocking(self, tmp_path):
        write_module(
            tmp_path,
            "core/x.py",
            """
            value = 1  # repro: allow[DET-SET-ITER] nothing here anymore
            """,
        )
        report = analyze_paths([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["SUP-UNUSED"]
        assert not report.blocking

    def test_string_literal_allow_is_inert(self, tmp_path):
        write_module(
            tmp_path,
            "core/x.py",
            """
            DOC = "# repro: allow[DET-SET-ITER] not a comment"
            """,
        )
        report = analyze_paths([str(tmp_path)])
        assert report.findings == []

    def test_parse_suppressions_shapes(self):
        supps = parse_suppressions(
            "x = 1  # repro: allow[A-1, B-2] two rules\n"
        )
        assert len(supps) == 1
        assert supps[0].rules == ("A-1", "B-2")
        assert supps[0].reason == "two rules"
        assert supps[0].target_line == 1


class TestBaseline:
    def test_round_trip_waives_exactly_once(self, tmp_path):
        write_module(
            tmp_path,
            "core/x.py",
            """
            a = {1}
            for item in a:
                print(item)
            for item in a:
                print(item)
            """,
        )
        report = analyze_paths([str(tmp_path)])
        assert len(report.findings) == 2
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        # Fully baselined: clean.
        full = analyze_paths(
            [str(tmp_path)], baseline=load_baseline(str(baseline_path))
        )
        assert full.findings == [] and full.baselined == 2
        # A baseline carrying only ONE occurrence still surfaces the other.
        write_baseline(str(baseline_path), report.findings[:1])
        partial = analyze_paths(
            [str(tmp_path)], baseline=load_baseline(str(baseline_path))
        )
        assert len(partial.findings) == 1 and partial.baselined == 1

    def test_baseline_file_is_canonical(self, tmp_path):
        write_module(
            tmp_path,
            "core/x.py",
            """
            for item in {1}:
                print(item)
            """,
        )
        report = analyze_paths([str(tmp_path)])
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_baseline(str(first), report.findings)
        write_baseline(str(second), list(reversed(report.findings)))
        assert first.read_bytes() == second.read_bytes()

    def test_malformed_baseline_is_a_hard_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"version\": 99}")
        with pytest.raises(ReproError):
            load_baseline(str(bad))
        bad.write_text("not json")
        with pytest.raises(ReproError):
            load_baseline(str(bad))


class TestOutputAndCli:
    def test_parse_error_is_a_finding(self, tmp_path):
        write_module(tmp_path, "core/x.py", "def broken(:\n")
        report = analyze_paths([str(tmp_path)])
        assert [f.rule for f in report.findings] == ["PARSE"]
        assert report.blocking

    def test_text_and_json_renderings_are_deterministic(self, tmp_path):
        write_module(
            tmp_path,
            "core/x.py",
            """
            import time

            t = time.time()
            for item in {1}:
                print(item)
            """,
        )
        report_a = analyze_paths([str(tmp_path)])
        report_b = analyze_paths([str(tmp_path)])
        assert render_text(report_a) == render_text(report_b)
        payload = json.loads(render_json(report_a))
        assert payload["errors"] == 2
        # Canonical order: by source location (the clock read is first).
        assert [f["rule"] for f in payload["findings"]] == [
            "DET-WALLCLOCK",
            "DET-SET-ITER",
        ]

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = write_module(
            tmp_path,
            "core/x.py",
            """
            for item in {1}:
                print(item)
            """,
        )
        clean = write_module(tmp_path, "core/y.py", "value = 1\n")
        assert main(["lint", str(clean), "--no-baseline"]) == 0
        assert main(["lint", str(dirty), "--no-baseline"]) == 1
        assert main(["lint", str(tmp_path / "missing")]) == 2
        assert (
            main(
                [
                    "lint",
                    str(clean),
                    "--no-baseline",
                    "--baseline",
                    "whatever.json",
                ]
            )
            == 2
        )
        assert main(["lint", str(clean), "--baseline", "nope.json"]) == 2
        capsys.readouterr()
        assert main(["lint", "--list-rules"]) == 0
        listing = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in listing

    def test_cli_write_baseline_round_trip(self, tmp_path, capsys, monkeypatch):
        write_module(
            tmp_path,
            "core/x.py",
            """
            for item in {1}:
                print(item)
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").is_file()
        capsys.readouterr()
        # The default baseline is picked up from the working directory.
        assert main(["lint", str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        write_module(tmp_path, "core/x.py", "value = 1\n")
        assert main(["lint", str(tmp_path), "--no-baseline", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []


class TestSelfCheck:
    def test_committed_tree_is_lint_clean(self, capsys):
        """``step lint src/repro`` must exit 0 on the committed tree."""
        assert os.path.isdir(REPO_SRC)
        code = main(["lint", REPO_SRC, "--no-baseline"])
        output = capsys.readouterr().out
        assert code == 0, f"lint findings on the committed tree:\n{output}"

    def test_every_rule_has_title_and_rationale(self):
        for spec in RULES.values():
            assert spec.title and spec.rationale, spec.id
