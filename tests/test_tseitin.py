"""Tests for the gate-level Tseitin encoders (checked against truth tables)."""

from itertools import product

import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sat.tseitin import (
    encode_and,
    encode_equiv,
    encode_iff,
    encode_implies,
    encode_ite,
    encode_or,
    encode_relaxed_equiv,
    encode_xor,
)


def _consistent_assignments(cnf, variables):
    """All total assignments to ``variables`` satisfying ``cnf`` (brute force)."""
    result = []
    for bits in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        full = {v: assignment.get(v, False) for v in range(1, cnf.num_vars + 1)}
        # Auxiliary variables beyond ``variables`` do not exist for these
        # encoders, so evaluation over ``variables`` is total.
        if cnf.evaluate(full):
            result.append(assignment)
    return result


class TestAndOr:
    @pytest.mark.parametrize("arity", [1, 2, 3])
    def test_and_matches_semantics(self, arity):
        cnf = CNF()
        inputs = cnf.new_vars(arity)
        out = cnf.new_var()
        encode_and(cnf, out, inputs)
        for assignment in _consistent_assignments(cnf, inputs + [out]):
            assert assignment[out] == all(assignment[i] for i in inputs)

    @pytest.mark.parametrize("arity", [1, 2, 3])
    def test_or_matches_semantics(self, arity):
        cnf = CNF()
        inputs = cnf.new_vars(arity)
        out = cnf.new_var()
        encode_or(cnf, out, inputs)
        for assignment in _consistent_assignments(cnf, inputs + [out]):
            assert assignment[out] == any(assignment[i] for i in inputs)

    def test_empty_and_is_true(self):
        cnf = CNF()
        out = cnf.new_var()
        encode_and(cnf, out, [])
        assert cnf.clauses == [(out,)]

    def test_empty_or_is_false(self):
        cnf = CNF()
        out = cnf.new_var()
        encode_or(cnf, out, [])
        assert cnf.clauses == [(-out,)]

    def test_negative_literal_inputs(self):
        cnf = CNF()
        a, b, out = cnf.new_vars(3)
        encode_and(cnf, out, [a, -b])
        for assignment in _consistent_assignments(cnf, [a, b, out]):
            assert assignment[out] == (assignment[a] and not assignment[b])


class TestXorEquiv:
    def test_xor(self):
        cnf = CNF()
        a, b, out = cnf.new_vars(3)
        encode_xor(cnf, out, a, b)
        for assignment in _consistent_assignments(cnf, [a, b, out]):
            assert assignment[out] == (assignment[a] != assignment[b])

    def test_iff(self):
        cnf = CNF()
        a, b, out = cnf.new_vars(3)
        encode_iff(cnf, out, a, b)
        for assignment in _consistent_assignments(cnf, [a, b, out]):
            assert assignment[out] == (assignment[a] == assignment[b])

    def test_equiv(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        encode_equiv(cnf, a, b)
        for assignment in _consistent_assignments(cnf, [a, b]):
            assert assignment[a] == assignment[b]

    def test_implies(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        encode_implies(cnf, a, b)
        for assignment in _consistent_assignments(cnf, [a, b]):
            assert (not assignment[a]) or assignment[b]


class TestIte:
    def test_ite_semantics(self):
        cnf = CNF()
        out, sel, t, e = cnf.new_vars(4)
        encode_ite(cnf, out, sel, t, e)
        for assignment in _consistent_assignments(cnf, [out, sel, t, e]):
            expected = assignment[t] if assignment[sel] else assignment[e]
            assert assignment[out] == expected


class TestRelaxedEquiv:
    def test_equality_enforced_when_control_false(self):
        cnf = CNF()
        a, b, relax = cnf.new_vars(3)
        encode_relaxed_equiv(cnf, a, b, relax)
        for assignment in _consistent_assignments(cnf, [a, b, relax]):
            if not assignment[relax]:
                assert assignment[a] == assignment[b]

    def test_relaxed_when_control_true(self):
        cnf = CNF()
        a, b, relax = cnf.new_vars(3)
        encode_relaxed_equiv(cnf, a, b, relax)
        solver = Solver()
        solver.add_cnf(cnf)
        assert solver.solve(assumptions=[relax, a, -b]).status is True
        assert solver.solve(assumptions=[-relax, a, -b]).status is False
