"""Tests for the session API: typed requests, engine registry, suite streams.

Three contracts anchor the layer:

* the legacy surface (``BiDecomposer.decompose_circuit``) is a shim over
  the session API and must stay fingerprint-identical to it;
* the registry is the single namespace for engine names — built-ins and
  plug-ins validate at *request construction*, with one-line errors;
* a suite submitted through ``Session.submit`` runs on exactly ONE shared
  worker pool and its per-circuit reports are fingerprint-identical to
  individual runs, for any jobs count, with ``as_completed()`` streaming a
  deterministic set of per-output records.
"""

import pytest

from repro import (
    ENGINES,
    QBF_ENGINES,
    AsyncSession,
    Budgets,
    CachePolicy,
    DecompositionRequest,
    EngineRegistry,
    EngineSpec,
    Parallelism,
    Session,
    default_registry,
)
from repro.circuits.generators import (
    decomposable_by_construction,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.result import BiDecResult
from repro.core.spec import ENGINE_LJH, ENGINE_STEP_MG, ENGINE_STEP_QD
from repro.errors import DecompositionError, ReproError


def request_for(aig, engines=(ENGINE_STEP_MG,), **kwargs):
    return DecompositionRequest(
        circuit=aig, operator="or", engines=tuple(engines), **kwargs
    )


def duplicated_cone_circuit(copies=4, seed=7):
    aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=seed)
    root = aig.outputs[0][1]
    for k in range(1, copies):
        aig.add_output(f"f{k}", root)
    return aig


class TestConfigValidation:
    def test_budget_defaults_mirror_engine_options(self):
        budgets = Budgets()
        assert budgets.per_call == 4.0
        assert budgets.per_output == 60.0
        assert budgets.per_circuit is None

    @pytest.mark.parametrize("field", ["per_call", "per_output", "per_circuit"])
    def test_negative_budgets_rejected(self, field):
        with pytest.raises(ReproError, match="must be >= 0"):
            Budgets(**{field: -1.5})

    def test_zero_budgets_are_legal_degenerate_deadlines(self):
        """0 = already expired, a first-class deadline state (legacy-compat)."""
        budgets = Budgets(per_call=0.0, per_output=0.0, per_circuit=0.0)
        assert (budgets.per_call, budgets.per_output, budgets.per_circuit) == (
            0.0,
            0.0,
            0.0,
        )

    def test_jobs_must_be_at_least_one(self):
        with pytest.raises(ReproError, match="jobs"):
            Parallelism(jobs=0)

    def test_unlimited_budgets_allowed(self):
        budgets = Budgets(per_call=None, per_output=None)
        assert budgets.per_call is None and budgets.per_output is None


class TestRequestValidation:
    def test_unknown_engine_rejected_with_known_engines_named(self, adder3):
        with pytest.raises(ReproError) as excinfo:
            request_for(adder3, engines=("STEP-XX",))
        message = str(excinfo.value)
        assert "unknown engine 'STEP-XX'" in message
        for name in ENGINES:
            assert name in message
        assert "\n" not in message  # one-line error

    def test_engines_must_not_be_a_bare_string(self, adder3):
        with pytest.raises(ReproError, match="bare string"):
            DecompositionRequest(circuit=adder3, operator="or", engines="STEP-MG")

    def test_engines_must_be_non_empty(self, adder3):
        with pytest.raises(ReproError, match="at least one engine"):
            request_for(adder3, engines=())

    def test_operator_normalised_and_validated(self, adder3):
        assert request_for(adder3).operator == "or"
        assert (
            DecompositionRequest(
                circuit=adder3, operator="OR", engines=(ENGINE_STEP_MG,)
            ).operator
            == "or"
        )
        with pytest.raises(ReproError):
            DecompositionRequest(
                circuit=adder3, operator="nand", engines=(ENGINE_STEP_MG,)
            )

    def test_max_outputs_must_be_at_least_one(self, adder3):
        with pytest.raises(ReproError, match="max_outputs"):
            request_for(adder3, max_outputs=0)

    def test_cache_directory_requires_dedup(self, adder3, tmp_path):
        with pytest.raises(ReproError, match="dedup"):
            request_for(
                adder3,
                parallelism=Parallelism(dedup=False),
                cache=CachePolicy(directory=str(tmp_path)),
            )

    def test_circuit_must_be_an_aig(self):
        with pytest.raises(ReproError, match="AIG"):
            DecompositionRequest(
                circuit="adder.blif", operator="or", engines=(ENGINE_STEP_MG,)
            )

    def test_bad_extraction_method_fails_at_construction(self, adder3):
        with pytest.raises(ReproError, match="extraction"):
            request_for(adder3, extraction="magic")

    def test_roundtrip_through_engine_options(self, adder3):
        request = request_for(
            adder3,
            budgets=Budgets(per_call=2.0, per_output=10.0),
            parallelism=Parallelism(jobs=3, dedup=False, seed=9),
            verify=True,
        )
        options = request.to_options()
        assert options.per_call_timeout == 2.0
        assert options.output_timeout == 10.0
        assert options.jobs == 3 and options.dedup is False and options.seed == 9
        assert options.verify is True

    def test_with_replaces_and_revalidates(self, adder3):
        request = request_for(adder3)
        assert request.with_(operator="and").operator == "and"
        with pytest.raises(ReproError):
            request.with_(engines=("BOGUS",))


class TestRegistry:
    def test_builtins_registered_by_default(self):
        registry = default_registry()
        for name in ENGINES:
            assert name in registry
            assert registry.get(name).builtin
        assert set(QBF_ENGINES) <= set(registry.names())

    def test_builtin_cannot_be_replaced_or_unregistered(self):
        registry = default_registry()
        with pytest.raises(ReproError, match="built-in"):
            registry.register(EngineSpec(ENGINE_STEP_QD, runner=lambda *a, **k: None))
        with pytest.raises(ReproError, match="built-in"):
            registry.unregister(ENGINE_STEP_QD)

    def test_plugin_register_and_unregister(self):
        registry = default_registry()
        spec = EngineSpec("TEST-NOOP", runner=lambda *a, **k: None)
        registry.register(spec)
        try:
            assert "TEST-NOOP" in registry
            assert not registry.get("TEST-NOOP").builtin
            with pytest.raises(ReproError, match="already"):
                registry.register(EngineSpec("TEST-NOOP", runner=lambda *a, **k: None))
        finally:
            registry.unregister("TEST-NOOP")
        assert "TEST-NOOP" not in registry

    def test_unregister_unknown_engine_rejected(self):
        with pytest.raises(ReproError, match="not registered"):
            default_registry().unregister("NO-SUCH")

    def test_spec_name_must_be_non_empty(self):
        with pytest.raises(ReproError):
            EngineSpec("")

    def test_isolated_registry_validates_independently(self, adder3):
        session = Session(registry=EngineRegistry())
        request = request_for(adder3)  # valid against the default registry
        with pytest.raises(ReproError, match="unknown engine"):
            session.run(request)


class TestPluginEngines:
    @pytest.fixture
    def never_engine(self):
        """A plug-in engine that deems every function non-decomposable."""

        def runner(function, operator, *, options, deadline):
            return BiDecResult(engine="TEST-NEVER", operator=operator, decomposed=False)

        spec = EngineSpec("TEST-NEVER", runner=runner, description="always refuses")
        default_registry().register(spec)
        yield spec
        default_registry().unregister("TEST-NEVER")

    def test_request_accepts_registered_plugin(self, adder3, never_engine):
        request = request_for(adder3, engines=(ENGINE_STEP_MG, "TEST-NEVER"))
        report = Session().run(request)
        for output in report.outputs:
            if not output.results:
                continue  # support below min_support: no engine ran
            result = output.results["TEST-NEVER"]
            assert result.engine == "TEST-NEVER" and not result.decomposed
            assert output.results[ENGINE_STEP_MG].decomposed in (True, False)

    def test_plugin_runs_through_decompose_function(self, never_engine):
        from repro.aig.function import BooleanFunction

        aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=3)
        function = BooleanFunction.from_output(aig, "f")
        result = BiDecomposer().decompose_function(function, "or", engine="TEST-NEVER")
        assert not result.decomposed

    def test_runner_returning_wrong_type_is_one_line_error(self):
        default_registry().register(
            EngineSpec("TEST-BROKEN", runner=lambda *a, **k: "oops")
        )
        try:
            from repro.aig.function import BooleanFunction

            aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=3)
            function = BooleanFunction.from_output(aig, "f")
            with pytest.raises(DecompositionError, match="BiDecResult"):
                BiDecomposer().decompose_function(function, "or", engine="TEST-BROKEN")
        finally:
            default_registry().unregister("TEST-BROKEN")


class TestLegacyShim:
    """The old kwargs surface must stay fingerprint-identical to sessions."""

    MATRIX = [
        (ripple_carry_adder, (2,), [ENGINE_STEP_MG, ENGINE_STEP_QD]),
        (mux_tree, (2,), [ENGINE_LJH, ENGINE_STEP_MG]),
        (parity_tree, (4,), [ENGINE_STEP_MG]),
    ]

    @pytest.mark.parametrize("builder,args,engines", MATRIX)
    def test_decompose_circuit_matches_session_run(self, builder, args, engines):
        aig = builder(*args)
        legacy = BiDecomposer(EngineOptions()).decompose_circuit(aig, "or", engines)
        report = Session().run(request_for(aig, engines=tuple(engines)))
        assert legacy.fingerprint() == report.fingerprint()

    def test_decompose_circuit_emits_deprecation_warning(self, adder3):
        with pytest.warns(DeprecationWarning, match="decompose_circuit"):
            BiDecomposer(EngineOptions()).decompose_circuit(
                adder3, "or", [ENGINE_STEP_MG], max_outputs=1
            )

    def test_shim_forwards_overrides(self, tmp_path):
        aig = duplicated_cone_circuit(copies=3)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG], cache_dir=str(tmp_path)
        )
        assert report.schedule["persistent_saved"] == 1
        warm = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG], cache_dir=str(tmp_path)
        )
        assert warm.schedule["persistent_hits"] >= 1
        assert warm.fingerprint() == report.fingerprint()

    def test_shim_accepts_legacy_non_positive_timeouts(self):
        """EngineOptions accepted any timeout; the shim must not raise."""
        aig = duplicated_cone_circuit(copies=2)
        report = BiDecomposer(EngineOptions(output_timeout=0)).decompose_circuit(
            aig, "or", [ENGINE_LJH]
        )
        assert len(report.outputs) == 2  # every engine call expired instantly
        report = BiDecomposer(EngineOptions(per_call_timeout=-1)).decompose_circuit(
            aig, "or", [ENGINE_LJH]
        )
        assert len(report.outputs) == 2

    def test_shim_drops_cache_dir_without_dedup(self, tmp_path):
        """The legacy surface silently persisted nothing; it must not raise."""
        aig = duplicated_cone_circuit(copies=2)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_STEP_MG], dedup=False, cache_dir=str(tmp_path)
        )
        assert "persistent_saved" not in report.schedule


def suite_requests(jobs=1):
    """Three small circuits, one engine, as a submit batch."""
    return [
        request_for(circuit, parallelism=Parallelism(jobs=jobs))
        for circuit in (mux_tree(2), ripple_carry_adder(2), parity_tree(4))
    ]


class TestSuiteStreams:
    def test_suite_uses_exactly_one_pool_and_matches_solo_runs(self):
        """Acceptance: 3+ circuits, one worker pool, solo-identical reports."""
        session = Session()
        requests = suite_requests(jobs=4)
        session.submit(requests)
        records = list(session.as_completed())
        reports = session.reports()
        assert len(reports) == 3
        total_outputs = sum(len(report.outputs) for report in reports)
        assert len(records) == total_outputs
        fallback = reports[0].schedule["fallback"]
        if fallback is None:
            # One shared pool served the whole suite (the schedule stats are
            # the witness: same pool id on every report, one pool counted).
            assert session.stats["pools_created"] == 1
            pool_ids = {report.schedule["pool_id"] for report in reports}
            assert len(pool_ids) == 1 and None not in pool_ids
            assert all(report.schedule["shared_pool"] for report in reports)
            assert all(report.schedule["suite_size"] == 3 for report in reports)
        else:
            # Environments without process pools fall back sequentially and
            # must say so on every report.
            assert fallback == "pool-unavailable"
            assert session.stats["pools_created"] == 0
        for request, report in zip(requests, reports):
            solo = Session().run(request)
            assert solo.fingerprint() == report.fingerprint()

    def test_as_completed_deterministic_across_jobs_counts(self):
        """jobs=1 and jobs=4 stream the same record set, reports identical."""
        streamed = {}
        reports = {}
        for jobs in (1, 4):
            session = Session()
            session.submit(suite_requests(jobs=jobs))
            streamed[jobs] = [
                record.fingerprint() for record in session.as_completed()
            ]
            reports[jobs] = session.reports()
        # Stream content is deterministic (order is completion order under a
        # pool, so compare as multisets) ...
        assert sorted(streamed[1]) == sorted(streamed[4])
        # ... and the assembled reports are fingerprint-identical.
        for one, four in zip(reports[1], reports[4]):
            assert one.fingerprint() == four.fingerprint()

    def test_sequential_stream_order_is_submit_then_output_order(self):
        session = Session()
        session.submit(suite_requests(jobs=1))
        names = [
            (record.circuit, record.output_name)
            for record in session.as_completed()
        ]
        assert names == [
            ("mux2", "y"),
            ("rca2", "s0"),
            ("rca2", "s1"),
            ("rca2", "cout"),
            ("parity4", "p"),
        ]

    def test_suite_dedups_within_each_circuit(self):
        aig = duplicated_cone_circuit(copies=4, seed=21)
        session = Session()
        session.submit([request_for(aig)])
        list(session.as_completed())
        (report,) = session.reports()
        assert report.schedule["unique_cones"] == 1
        assert report.schedule["cache_hits"] == 3

    def test_submit_accepts_single_request_and_counts_pending(self, adder3):
        session = Session()
        assert session.submit(request_for(adder3)) == 1
        assert session.submit(suite_requests()) == 4
        records = list(session.as_completed())
        assert len(records) == len(session.reports()[0].outputs) + 5

    def test_empty_queue_streams_nothing(self):
        session = Session()
        assert list(session.as_completed()) == []
        assert session.reports() == []

    def test_report_lookup_by_circuit_name(self):
        session = Session()
        session.submit(suite_requests())
        list(session.as_completed())
        assert session.report("rca2").circuit == "rca2"
        with pytest.raises(ReproError, match="no report"):
            session.report("missing")

    def test_run_suite_convenience(self):
        reports = Session().run_suite(suite_requests())
        assert [report.circuit for report in reports] == [
            "mux2",
            "rca2",
            "parity4",
        ]

    def test_circuit_budgets_apply_per_request(self):
        session = Session()
        exhausted = request_for(
            ripple_carry_adder(2), budgets=Budgets(per_circuit=0.0)
        )
        generous = request_for(
            mux_tree(2), budgets=Budgets(per_circuit=300.0)
        )
        session.submit([exhausted, generous])
        list(session.as_completed())
        first, second = session.reports()
        assert first.schedule["executed"] == 0
        assert first.schedule["skipped"] == ["s0", "s1", "cout"]
        assert second.schedule["skipped"] == []
        assert len(second.outputs) == 1

    def test_earlier_units_do_not_drain_later_units_budgets(self):
        """A unit's per-circuit budget starts when ITS jobs start, not at
        suite submission — earlier units' execution must not starve it."""
        import time

        def sleepy(function, operator, *, options, deadline):
            time.sleep(0.4)
            return BiDecResult(engine="TEST-SLEEP", operator=operator, decomposed=False)

        default_registry().register(EngineSpec("TEST-SLEEP", runner=sleepy))
        try:
            slow = request_for(ripple_carry_adder(2), engines=("TEST-SLEEP",))
            budgeted = request_for(
                mux_tree(2), budgets=Budgets(per_circuit=0.75)
            )
            session = Session()
            session.submit([slow, budgeted])
            list(session.as_completed())
            _, second = session.reports()
            # The slow unit ran >= 1.2 s; with the budget armed at submit
            # time the second unit would have skipped its only output.
            assert second.schedule["skipped"] == []
            assert len(second.outputs) == 1
        finally:
            default_registry().unregister("TEST-SLEEP")

    def test_submit_invalidates_previous_reports(self, adder3):
        """reports() must not answer batch N requests with batch N-1 data."""
        session = Session()
        session.submit([request_for(mux_tree(2))])
        list(session.as_completed())
        assert len(session.reports()) == 1
        session.submit([request_for(adder3, max_outputs=1)])
        with pytest.raises(ReproError, match="not been drained"):
            session.reports()
        list(session.as_completed())
        assert session.reports()[0].circuit == "rca3"

    def test_abandoned_stream_invalidates_reports(self, adder3):
        session = Session()
        session.submit(suite_requests())
        stream = session.as_completed()
        next(stream)  # start, then abandon mid-drain
        stream.close()
        with pytest.raises(ReproError, match="not been drained"):
            session.reports()
        # A fresh submit + full drain recovers.
        session.submit([request_for(adder3, max_outputs=1)])
        list(session.as_completed())
        assert len(session.reports()) == 1

    def test_suite_shares_one_persistent_snapshot(self, tmp_path):
        """Units sharing a cache dir accumulate into ONE snapshot file."""
        cache = CachePolicy(directory=str(tmp_path))
        aig_a = duplicated_cone_circuit(copies=2, seed=5)
        aig_b = ripple_carry_adder(2)
        session = Session()
        session.submit(
            [request_for(aig_a, cache=cache), request_for(aig_b, cache=cache)]
        )
        list(session.as_completed())
        saved = sum(
            report.schedule["persistent_saved"] for report in session.reports()
        )
        assert saved >= 2  # both circuits' entries survived into the snapshot
        warm_session = Session()
        warm_session.submit(
            [request_for(aig_a, cache=cache), request_for(aig_b, cache=cache)]
        )
        list(warm_session.as_completed())
        for report in warm_session.reports():
            assert report.schedule["persistent_hits"] >= 1


class TestTopLevelExports:
    def test_engine_constants_importable_from_repro(self):
        import repro

        assert repro.ENGINE_STEP_QD == "STEP-QD"
        assert repro.ENGINE_LJH == "LJH"
        assert repro.ENGINE_BDD == "BDD"
        assert set(repro.QBF_ENGINES) == {"STEP-QD", "STEP-QB", "STEP-QDB"}
        assert len(repro.ENGINES) == 6
        assert set(repro.OPERATORS) == {"or", "and", "xor"}

    def test_api_types_importable_from_repro(self):
        import repro

        for name in (
            "Session",
            "DecompositionRequest",
            "Budgets",
            "Parallelism",
            "CachePolicy",
            "EngineRegistry",
            "EngineSpec",
            "default_registry",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


class TestRequestLifecycle:
    """The explicit state machine: queued -> running -> done/cancelled/failed."""

    def test_run_issues_a_done_ticket(self, adder3):
        session = Session()
        session.run(request_for(adder3, max_outputs=1))
        (ticket,) = session.tickets()
        assert ticket.state == "done"
        assert ticket.report is not None
        assert session.status() == {ticket.id: "done"}
        assert session.status(ticket.id) == "done"

    def test_submitted_requests_are_queued_then_done(self):
        session = Session()
        session.submit(suite_requests())
        assert set(session.status().values()) == {"queued"}
        list(session.as_completed())
        assert set(session.status().values()) == {"done"}
        for ticket, report in zip(session.tickets(), session.reports()):
            assert ticket.report.fingerprint() == report.fingerprint()

    def test_cancel_of_queued_request_removes_it_from_the_batch(self):
        session = Session()
        session.submit(suite_requests())
        victim = session.tickets()[1]
        assert session.cancel(victim.id) is True
        assert victim.state == "cancelled"
        list(session.as_completed())
        reports = session.reports()
        assert [report.circuit for report in reports] == ["mux2", "parity4"]
        # Cancelling a drained (terminal) request is a no-op.
        assert session.cancel(victim.id) is False
        assert session.cancel(session.tickets()[0].id) is False

    def test_unknown_ticket_id_is_one_line_error(self):
        with pytest.raises(ReproError, match="unknown request ticket"):
            Session().status(999)

    def test_illegal_transition_raises_and_terminal_is_sticky(self):
        from repro.api.lifecycle import RequestTicket

        ticket = RequestTicket(1, "x")
        with pytest.raises(ReproError, match="illegal request-state transition"):
            ticket.mark_done(None)
        ticket.mark_running()
        ticket.mark_done("report")
        # Late events after terminal are dropped, not raised (races).
        assert ticket.mark_cancelled() is False
        assert ticket.state == "done"

    def test_abandoned_stream_cancels_undrained_tickets(self):
        session = Session()
        session.submit(suite_requests())
        stream = session.as_completed()
        next(stream)
        stream.close()
        states = set(session.status().values())
        assert "cancelled" in states and "queued" not in states


class TestSessionContextManager:
    def test_close_is_deterministic_and_idempotent(self, adder3):
        with Session() as session:
            session.run(request_for(adder3, max_outputs=1))
            assert not session.closed
        assert session.closed
        session.close()  # idempotent
        with pytest.raises(ReproError, match="closed"):
            session.run(request_for(adder3, max_outputs=1))
        with pytest.raises(ReproError, match="closed"):
            session.submit(request_for(adder3, max_outputs=1))

    def test_close_cancels_pending_requests_but_keeps_reports(self):
        session = Session()
        session.submit([request_for(mux_tree(2))])
        list(session.as_completed())
        session.submit([request_for(ripple_carry_adder(2))])
        session.close()
        states = [ticket.state for ticket in session.tickets()]
        assert states == ["done", "cancelled"]

    def test_session_shares_one_persistent_cache_instance(self, tmp_path):
        """One disk read per session: both runs use the same instance."""
        cache = CachePolicy(directory=str(tmp_path))
        aig = duplicated_cone_circuit(copies=2, seed=9)
        with Session() as session:
            cold = session.run(request_for(aig, cache=cache))
            warm = session.run(request_for(aig, cache=cache))
            assert len(session._persistent_caches) == 1
        assert cold.schedule["persistent_saved"] >= 1
        assert warm.schedule["persistent_hits"] >= 1
        assert warm.fingerprint() == cold.fingerprint()


def _run_async(coroutine):
    import asyncio

    return asyncio.run(coroutine)


class TestAsyncSession:
    """Async-vs-sync differential: same requests, same fingerprints."""

    BACKENDS = ["serial", "thread"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_matches_sync_session(self, backend):
        import asyncio

        requests = suite_requests()

        async def go():
            async with AsyncSession(jobs=2, backend=backend) as session:
                return await asyncio.gather(
                    *(session.run(request) for request in requests)
                )

        reports = _run_async(go())
        for request, report in zip(requests, reports):
            assert report.fingerprint() == Session().run(request).fingerprint()

    def test_as_completed_streams_the_full_record_set(self):
        requests = suite_requests()

        async def go():
            async with AsyncSession(jobs=2, backend="thread") as session:
                handles = [session.submit(request) for request in requests]
                records = [record async for record in session.as_completed()]
                return handles, records

        handles, records = _run_async(go())
        sync_session = Session()
        sync_session.submit(suite_requests())
        expected = sorted(r.fingerprint() for r in sync_session.as_completed())
        assert sorted(r.fingerprint() for r in records) == expected
        assert all(handle.state == "done" for handle in handles)

    def test_events_stream_progress_and_terminal_state(self):
        async def go():
            async with AsyncSession(jobs=1, backend="serial") as session:
                handle = session.submit(request_for(ripple_carry_adder(2)))
                return [event async for event in handle.events()]

        events = _run_async(go())
        assert events[-1]["type"] == "state" and events[-1]["state"] == "done"
        outputs = [e["output"] for e in events if e["type"] == "record"]
        assert set(outputs) == {"s0", "s1", "cout"}

    def test_cancel_perturbs_nothing_else(self):
        import threading
        import time

        release = threading.Event()

        def stalling(function, operator, *, options, deadline):
            release.wait(30)
            return BiDecResult(engine="TEST-ASTALL", operator=operator, decomposed=False)

        default_registry().register(EngineSpec("TEST-ASTALL", runner=stalling))
        try:

            async def go():
                async with AsyncSession(jobs=1, backend="thread") as session:
                    slow = session.submit(
                        request_for(ripple_carry_adder(2), engines=("TEST-ASTALL",))
                    )
                    fast = session.submit(request_for(mux_tree(2)))
                    assert slow.cancel() is True
                    release.set()
                    report = await fast.report()
                    with pytest.raises(ReproError, match="cancelled"):
                        await slow.report()
                    return slow.state, report

            state, report = _run_async(go())
            assert state == "cancelled"
            assert (
                report.fingerprint()
                == Session().run(request_for(mux_tree(2))).fingerprint()
            )
        finally:
            release.set()
            default_registry().unregister("TEST-ASTALL")

    def test_failed_request_does_not_take_the_session_down(self):
        def broken(function, operator, *, options, deadline):
            raise RuntimeError("kaboom")

        default_registry().register(EngineSpec("TEST-ABROKEN", runner=broken))
        try:

            async def go():
                async with AsyncSession(jobs=1, backend="thread") as session:
                    bad = session.submit(
                        request_for(mux_tree(2), engines=("TEST-ABROKEN",))
                    )
                    with pytest.raises(ReproError, match="kaboom"):
                        await bad.report()
                    good = await session.run(request_for(mux_tree(2)))
                    return bad, good, session.stats()

            bad, good, stats = _run_async(go())
            assert bad.state == "failed" and "kaboom" in bad.error
            assert good.circuit == "mux2"
            assert stats["failed"] == 1 and stats["completed"] == 1
        finally:
            default_registry().unregister("TEST-ABROKEN")

    def test_live_fair_queue_interleaves_joining_units_by_priority(self):
        """Incremental WFQ: a unit joining mid-stream competes from the
        current virtual time, weighted by its priority."""
        from repro.core.scheduler import LiveFairQueue, OutputJob

        def jobs(count):
            return [
                OutputJob(
                    index=i,
                    output_name=f"o{i}",
                    num_support=2,
                    input_names=(),
                    cost=10,
                    seed=0,
                    cache_key=None,
                )
                for i in range(count)
            ]

        queue = LiveFairQueue()
        queue.add_unit(0, jobs(4), priority=1.0)
        order = [queue.pop()[0]]
        # Unit 1 (double priority) joins after one dispatch; equal-cost
        # jobs, so it gets two dispatch slots for each of unit 0's.
        queue.add_unit(1, jobs(4), priority=2.0)
        while len(queue):
            order.append(queue.pop()[0])
        assert order == [0, 1, 0, 1, 1, 0, 1, 0]
        assert queue.pop() is None

    def test_live_fair_queue_remove_unit_drops_queued_jobs(self):
        from repro.core.scheduler import LiveFairQueue, OutputJob

        def job(i):
            return OutputJob(
                index=i,
                output_name=f"o{i}",
                num_support=2,
                input_names=(),
                cost=1,
                seed=0,
                cache_key=None,
            )

        queue = LiveFairQueue()
        queue.add_unit(0, [job(0), job(1)], priority=1.0)
        queue.add_unit(1, [job(0)], priority=1.0)
        assert queue.remove_unit(0) == 2
        remaining = []
        while len(queue):
            remaining.append(queue.pop()[0])
        assert remaining == [1]

    def test_submit_after_close_rejected(self):
        async def go():
            session = AsyncSession(jobs=1, backend="serial")
            await session.aclose()
            with pytest.raises(ReproError, match="closed"):
                session.submit(request_for(mux_tree(2)))

        _run_async(go())

    def test_async_session_requires_a_running_loop(self):
        with pytest.raises(ReproError, match="running event loop"):
            AsyncSession()


class TestLiveSchedulerInvariants:
    """Regressions for the live scheduler's daemon-grade invariants."""

    def test_queue_wait_does_not_drain_circuit_budgets(self):
        """A live request's per-circuit budget starts when ITS jobs reach
        the executor, not at submission — time spent queued behind other
        clients costs it nothing (live analogue of the suite test)."""
        import time

        def sleepy(function, operator, *, options, deadline):
            time.sleep(0.4)
            return BiDecResult(
                engine="TEST-LSLEEP", operator=operator, decomposed=False
            )

        default_registry().register(EngineSpec("TEST-LSLEEP", runner=sleepy))
        try:

            async def go():
                async with AsyncSession(jobs=1, backend="thread") as session:
                    slow = session.submit(
                        request_for(ripple_carry_adder(2), engines=("TEST-LSLEEP",))
                    )
                    budgeted = session.submit(
                        request_for(
                            mux_tree(2), budgets=Budgets(per_circuit=0.75)
                        )
                    )
                    await slow.report()
                    return await budgeted.report()

            report = _run_async(go())
            # The slow request held the only worker for >= 1.2 s; with the
            # budget armed at submit time the mux output would be skipped.
            assert report.schedule["skipped"] == []
            assert len(report.outputs) == 1
        finally:
            default_registry().unregister("TEST-LSLEEP")

    def test_forget_releases_per_request_scheduler_state(self):
        """A daemon serving an unbounded stream must not accumulate
        per-request units (or their AIGs) in the live scheduler."""

        async def go():
            async with AsyncSession(jobs=1, backend="serial") as session:
                for _ in range(5):
                    handle = session.submit(request_for(mux_tree(2)))
                    await handle.report()
                    session.forget(handle.id)
                return len(session._live._units), len(session._handles)

        units, handles = _run_async(go())
        assert units == 0 and handles == 0

    def test_failure_with_concurrent_jobs_releases_the_unit(self):
        """One job failing while siblings are in flight must still drive
        the unit to released state (no stuck inflight accounting)."""
        import threading
        import time

        gate = threading.Event()

        def first_fails(function, operator, *, options, deadline):
            if not gate.is_set():
                gate.set()
                raise RuntimeError("first job exploded")
            time.sleep(0.05)
            return BiDecResult(
                engine="TEST-HALFFAIL", operator=operator, decomposed=False
            )

        default_registry().register(
            EngineSpec("TEST-HALFFAIL", runner=first_fails)
        )
        try:

            async def go():
                async with AsyncSession(jobs=2, backend="thread") as session:
                    handle = session.submit(
                        request_for(ripple_carry_adder(2), engines=("TEST-HALFFAIL",))
                    )
                    with pytest.raises(ReproError, match="exploded"):
                        await handle.report()
                    # Give straggler completions time to land, then check
                    # the unit fully drained and released.
                    import asyncio

                    for _ in range(100):
                        units = session._live._units
                        unit = next(iter(units.values()))
                        if unit.inflight == 0 and unit.prepared is None:
                            break
                        await asyncio.sleep(0.05)
                    unit = next(iter(session._live._units.values()))
                    return handle.state, unit.inflight, unit.prepared

            state, inflight, prepared = _run_async(go())
            assert state == "failed"
            assert inflight == 0 and prepared is None
        finally:
            default_registry().unregister("TEST-HALFFAIL")
