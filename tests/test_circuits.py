"""Tests for the circuit generators, the embedded library and the suites."""

import pytest

from repro.aig.function import BooleanFunction
from repro.aig.support import max_output_support
from repro.circuits import generators
from repro.circuits.library import classic_circuit, classic_circuit_names
from repro.circuits.suites import paper_row_mapping, performance_suite, quality_suite
from repro.errors import AigError, ReproError


def _outputs_as_int(aig, prefix, width, values):
    """Evaluate outputs ``prefix0..prefix{width-1}`` as an unsigned integer."""
    result = 0
    for i in range(width):
        f = BooleanFunction.from_output(aig, f"{prefix}{i}")
        if f.evaluate({name: values[name] for name in f.input_names}):
            result |= 1 << i
    return result


def _operand_assignment(width, a_value, b_value):
    values = {}
    for i in range(width):
        values[f"a{i}"] = bool((a_value >> i) & 1)
        values[f"b{i}"] = bool((b_value >> i) & 1)
    return values


class TestArithmeticGenerators:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_ripple_carry_adder_adds(self, width):
        aig = generators.ripple_carry_adder(width)
        for a in range(1 << width):
            for b in range(1 << width):
                values = _operand_assignment(width, a, b)
                total = _outputs_as_int(aig, "s", width, values)
                cout = BooleanFunction.from_output(aig, "cout").evaluate(
                    {n: values[n] for n in BooleanFunction.from_output(aig, "cout").input_names}
                )
                assert total + (1 << width) * int(cout) == a + b

    @pytest.mark.parametrize("width", [2, 3])
    def test_carry_lookahead_equals_ripple(self, width):
        rca = generators.ripple_carry_adder(width)
        cla = generators.carry_lookahead_adder(width)
        for name in [n for n, _ in rca.outputs]:
            assert BooleanFunction.from_output(rca, name).semantically_equal(
                BooleanFunction.from_output(cla, name)
            )

    @pytest.mark.parametrize("width", [2, 3])
    def test_multiplier_multiplies(self, width):
        aig = generators.multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                values = _operand_assignment(width, a, b)
                product = 0
                for i in range(2 * width):
                    f = BooleanFunction.from_output(aig, f"p{i}")
                    bit = f.evaluate({n: values[n] for n in f.input_names}) if f.num_inputs else False
                    product |= int(bit) << i
                assert product == a * b

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_comparator(self, width):
        aig = generators.comparator(width)
        for a in range(1 << width):
            for b in range(1 << width):
                values = _operand_assignment(width, a, b)
                for name, expected in (("eq", a == b), ("lt", a < b), ("gt", a > b)):
                    f = BooleanFunction.from_output(aig, name)
                    assert f.evaluate({n: values[n] for n in f.input_names}) == expected

    def test_alu_slice_operations(self):
        width = 2
        aig = generators.alu_slice(width)
        for op, fn in enumerate(
            [lambda a, b: a & b, lambda a, b: a | b, lambda a, b: a ^ b, lambda a, b: (a + b) % (1 << width)]
        ):
            for a in range(1 << width):
                for b in range(1 << width):
                    values = _operand_assignment(width, a, b)
                    values["op0"] = bool(op & 1)
                    values["op1"] = bool(op & 2)
                    result = 0
                    for i in range(width):
                        f = BooleanFunction.from_output(aig, f"y{i}")
                        if f.evaluate({n: values[n] for n in f.input_names}):
                            result |= 1 << i
                    assert result == fn(a, b)


class TestLogicGenerators:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_parity(self, width):
        aig = generators.parity_tree(width)
        f = BooleanFunction.from_output(aig, "p")
        for pattern in range(1 << width):
            values = [bool((pattern >> i) & 1) for i in range(width)]
            assert f.evaluate(values) == (bin(pattern).count("1") % 2 == 1)

    @pytest.mark.parametrize("width", [3, 5])
    def test_majority(self, width):
        aig = generators.majority(width)
        f = BooleanFunction.from_output(aig, "maj")
        for pattern in range(1 << width):
            values = [bool((pattern >> i) & 1) for i in range(width)]
            assert f.evaluate(values) == (bin(pattern).count("1") > width // 2)

    def test_mux_tree(self):
        aig = generators.mux_tree(2)
        f = BooleanFunction.from_output(aig, "y")
        for sel in range(4):
            for data in range(16):
                values = {}
                for i in range(2):
                    values[f"s{i}"] = bool((sel >> i) & 1)
                for i in range(4):
                    values[f"d{i}"] = bool((data >> i) & 1)
                assert f.evaluate(values) == bool((data >> sel) & 1)

    def test_decoder(self):
        aig = generators.decoder(2)
        for sel in range(4):
            for enable in (False, True):
                values = {"en": enable, "s0": bool(sel & 1), "s1": bool(sel & 2)}
                for out in range(4):
                    f = BooleanFunction.from_output(aig, f"o{out}")
                    expected = enable and (out == sel)
                    assert f.evaluate({n: values[n] for n in f.input_names}) == expected

    def test_random_generators_are_deterministic(self):
        a = generators.random_aig(6, 20, 2, seed=5)
        b = generators.random_aig(6, 20, 2, seed=5)
        for name in [n for n, _ in a.outputs]:
            assert BooleanFunction.from_output(a, name).semantically_equal(
                BooleanFunction.from_output(b, name)
            )

    def test_random_dnf_respects_sizes(self):
        aig = generators.random_dnf(8, 10, 3, seed=1)
        assert len(aig.inputs) == 8
        assert len(aig.outputs) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(AigError):
            generators.ripple_carry_adder(0)
        with pytest.raises(AigError):
            generators.random_dnf(3, 2, 5)
        with pytest.raises(AigError):
            generators.decomposable_by_construction("nand", 2, 2)


class TestDecomposableByConstruction:
    @pytest.mark.parametrize("operator", ["or", "and", "xor"])
    def test_ground_truth_partition_is_decomposable(self, operator):
        from repro.core.checks import check_decomposable
        from repro.core.partition import VariablePartition

        aig, xa, xb, xc = generators.decomposable_by_construction(operator, 2, 2, 1, seed=13)
        f = BooleanFunction.from_output(aig, "f")
        present = set(f.input_names)
        partition = VariablePartition(
            tuple(n for n in xa if n in present),
            tuple(n for n in xb if n in present),
            tuple(n for n in xc if n in present),
        )
        if partition.is_trivial:
            pytest.skip("degenerate random instance")
        assert check_decomposable(f, operator, partition)


class TestLibraryAndSuites:
    def test_library_names_nonempty(self):
        names = classic_circuit_names()
        assert "c17" in names and "full_adder" in names

    def test_all_library_circuits_parse(self):
        for name in classic_circuit_names():
            aig = classic_circuit(name)
            assert aig.outputs

    def test_unknown_library_circuit(self):
        with pytest.raises(ReproError):
            classic_circuit("c9999")

    def test_c17_semantics(self):
        aig = classic_circuit("c17")
        g22 = BooleanFunction.from_output(aig, "G22")
        # G22 = NAND(NAND(G1, G3), NAND(G2, NAND(G3, G6)))
        def reference(g1, g2, g3, g6, g7):
            g10 = not (g1 and g3)
            g11 = not (g3 and g6)
            g16 = not (g2 and g11)
            return not (g10 and g16)

        for pattern in range(32):
            bits = [bool((pattern >> i) & 1) for i in range(5)]
            values = dict(zip(["G1", "G2", "G3", "G6", "G7"], bits))
            assert g22.evaluate({n: values[n] for n in g22.input_names}) == reference(*bits)

    def test_full_adder_semantics(self):
        aig = classic_circuit("full_adder")
        s = BooleanFunction.from_output(aig, "sum")
        c = BooleanFunction.from_output(aig, "cout")
        for pattern in range(8):
            a, b, cin = (bool((pattern >> i) & 1) for i in range(3))
            total = int(a) + int(b) + int(cin)
            assert s.evaluate({"a": a, "b": b, "cin": cin}) == bool(total % 2)
            assert c.evaluate({"a": a, "b": b, "cin": cin}) == (total >= 2)

    def test_seq_ctrl_is_sequential(self):
        aig = classic_circuit("seq_ctrl")
        assert aig.latches
        comb = aig.make_combinational()
        assert not comb.latches

    def test_quality_suite_shape(self):
        suite = quality_suite("small")
        assert len(suite) >= 15
        names = [row.name for row in suite]
        assert "C7552" in names and "mm9b" in names
        for row in suite:
            assert row.num_outputs >= 1
            assert row.max_support >= 2

    def test_suite_scales(self):
        small = {row.name: row.num_inputs for row in quality_suite("small")}
        medium = {row.name: row.num_inputs for row in quality_suite("medium")}
        assert any(medium[name] > small[name] for name in small)

    def test_s9234_row_scales_with_suite(self):
        """Regression: the s9234.1 mux-tree stand-in ignored the suite scale."""
        small = {row.name: row for row in quality_suite("small")}
        medium = {row.name: row for row in quality_suite("medium")}
        assert medium["s9234.1"].num_inputs > small["s9234.1"].num_inputs
        assert "16-to-1" in medium["s9234.1"].stand_in

    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError):
            quality_suite("enormous")

    def test_paper_row_mapping_covers_suite(self):
        mapping = paper_row_mapping()
        for row in performance_suite("small"):
            assert row.name in mapping
