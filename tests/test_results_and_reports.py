"""Tests for the result containers and report aggregation."""

import pytest

from repro.core.partition import VariablePartition
from repro.core.result import (
    BiDecResult,
    CircuitReport,
    OutputResult,
    SearchStatistics,
)


def _result(engine, decomposed=True, xa=("a",), xb=("b",), xc=(), cpu=0.5):
    partition = VariablePartition(xa, xb, xc) if decomposed else None
    return BiDecResult(
        engine=engine,
        operator="or",
        decomposed=decomposed,
        partition=partition,
        cpu_seconds=cpu,
    )


class TestSearchStatistics:
    def test_merge_accumulates(self):
        first = SearchStatistics(sat_calls=2, qbf_calls=1, bound_sequence=[3])
        second = SearchStatistics(sat_calls=3, refinements=4, bound_sequence=[1, 2])
        first.merge(second)
        assert first.sat_calls == 5
        assert first.refinements == 4
        assert first.qbf_calls == 1
        assert first.bound_sequence == [3, 1, 2]


class TestBiDecResult:
    def test_metrics_from_partition(self):
        result = _result("STEP-QD", xa=("a", "b"), xb=("c",), xc=("d",))
        assert result.disjointness == pytest.approx(0.25)
        assert result.balancedness == pytest.approx(0.25)
        assert result.combined_metric == pytest.approx(0.5)

    def test_metrics_none_when_not_decomposed(self):
        result = _result("LJH", decomposed=False)
        assert result.disjointness is None
        assert result.balancedness is None
        assert result.combined_metric is None

    def test_summary_mentions_engine_and_metrics(self):
        assert "STEP-QB" in _result("STEP-QB").summary()
        assert "not decomposable" in _result("LJH", decomposed=False).summary()

    def test_summary_marks_optimum(self):
        result = _result("STEP-QD")
        result.optimum_proven = True
        assert "(optimum)" in result.summary()


class TestCircuitReport:
    def _report(self):
        report = CircuitReport(circuit="c", operator="or")
        first = OutputResult(circuit="c", output_name="f", num_support=4)
        first.results = {"STEP-QD": _result("STEP-QD", cpu=0.25), "LJH": _result("LJH", cpu=1.0)}
        second = OutputResult(circuit="c", output_name="g", num_support=5)
        second.results = {
            "STEP-QD": _result("STEP-QD", decomposed=False, cpu=0.5),
            "LJH": _result("LJH", cpu=0.5),
        }
        report.outputs = [first, second]
        return report

    def test_decomposed_count(self):
        report = self._report()
        assert report.decomposed_count("STEP-QD") == 1
        assert report.decomposed_count("LJH") == 2
        assert report.decomposed_count("STEP-MG") == 0

    def test_cpu_seconds_sums_outputs(self):
        report = self._report()
        assert report.cpu_seconds("STEP-QD") == pytest.approx(0.75)
        assert report.cpu_seconds("LJH") == pytest.approx(1.5)

    def test_cpu_seconds_prefers_recorded_totals(self):
        report = self._report()
        report.total_cpu = {"STEP-QD": 2.0}
        assert report.cpu_seconds("STEP-QD") == pytest.approx(2.0)

    def test_output_result_lookup(self):
        report = self._report()
        assert report.outputs[0].result_for("LJH").engine == "LJH"
        assert report.outputs[0].result_for("STEP-MG") is None
