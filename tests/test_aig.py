"""Tests for the AIG data structure, simulation, support and CNF export."""

import pytest

from repro.aig.aig import AIG, FALSE_LIT, TRUE_LIT, lit_neg, lit_var
from repro.aig.cnf import cone_to_cnf
from repro.aig.simulate import exhaustive_patterns, simulate, simulate_words
from repro.aig.support import functional_support, max_output_support, structural_support
from repro.errors import AigError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver


class TestConstruction:
    def test_constants(self):
        aig = AIG()
        assert aig.add_and(TRUE_LIT, TRUE_LIT) == TRUE_LIT
        assert aig.add_and(FALSE_LIT, TRUE_LIT) == FALSE_LIT

    def test_and_simplifications(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_neg(a)) == FALSE_LIT
        assert aig.add_and(a, TRUE_LIT) == a
        assert aig.add_and(a, FALSE_LIT) == FALSE_LIT

    def test_structural_hashing(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        n1 = aig.add_and(a, b)
        n2 = aig.add_and(b, a)
        assert n1 == n2
        assert aig.num_ands == 1

    def test_duplicate_input_name_rejected(self):
        aig = AIG()
        aig.add_input("a")
        with pytest.raises(AigError):
            aig.add_input("a")

    def test_input_lookup(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.input_by_name("a") == lit_var(a)
        with pytest.raises(AigError):
            aig.input_by_name("zzz")

    def test_invalid_literal_rejected(self):
        aig = AIG()
        with pytest.raises(AigError):
            aig.add_and(999, 1)

    def test_outputs_recorded(self):
        aig = AIG()
        a = aig.add_input("a")
        aig.add_output("f", a)
        assert aig.outputs == [("f", a)]

    def test_fanins_only_for_and_nodes(self):
        aig = AIG()
        a = aig.add_input("a")
        with pytest.raises(AigError):
            aig.fanins(lit_var(a))


class TestDerivedOperators:
    def _truth(self, aig, lit, inputs):
        words, mask = exhaustive_patterns(len(inputs))
        table = simulate_words(aig, {lit_var(i): words[k] for k, i in enumerate(inputs)}, [lit], mask)
        return table[0]

    def test_or(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        assert self._truth(aig, aig.lor(a, b), [a, b]) == 0b1110

    def test_xor(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        assert self._truth(aig, aig.lxor(a, b), [a, b]) == 0b0110

    def test_xnor(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        assert self._truth(aig, aig.lxnor(a, b), [a, b]) == 0b1001

    def test_mux(self):
        aig = AIG()
        s, t, e = aig.add_input("s"), aig.add_input("t"), aig.add_input("e")
        # pattern bit order: s is input 0, t input 1, e input 2
        table = self._truth(aig, aig.mux(s, t, e), [s, t, e])
        for pattern in range(8):
            s_v, t_v, e_v = pattern & 1, (pattern >> 1) & 1, (pattern >> 2) & 1
            expected = t_v if s_v else e_v
            assert ((table >> pattern) & 1) == expected

    def test_implies(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        assert self._truth(aig, aig.implies(a, b), [a, b]) == 0b1101

    def test_list_operators(self):
        aig = AIG()
        lits = [aig.add_input(f"x{i}") for i in range(3)]
        assert self._truth(aig, aig.land_list(lits), lits) == 0b10000000
        assert self._truth(aig, aig.lor_list(lits), lits) == 0b11111110
        assert self._truth(aig, aig.lxor_list(lits), lits) == 0b10010110

    def test_empty_list_operators(self):
        aig = AIG()
        assert aig.land_list([]) == TRUE_LIT
        assert aig.lor_list([]) == FALSE_LIT
        assert aig.lxor_list([]) == FALSE_LIT


class TestSimulation:
    def test_single_pattern(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        g = aig.add_and(a, lit_neg(b))
        values = simulate(aig, {lit_var(a): True, lit_var(b): False}, [g, lit_neg(g)])
        assert values == [True, False]

    def test_missing_input_value_rejected(self):
        aig = AIG()
        a = aig.add_input("a")
        with pytest.raises(AigError):
            simulate(aig, {}, [a])

    def test_constant_roots(self):
        aig = AIG()
        assert simulate(aig, {}, [FALSE_LIT, TRUE_LIT]) == [False, True]

    def test_exhaustive_patterns_convention(self):
        words, mask = exhaustive_patterns(2)
        # Input 0 toggles every pattern, input 1 every two patterns.
        assert words[0] == 0b1010
        assert words[1] == 0b1100
        assert mask == 0b1111


class TestConesAndCopy:
    def test_cone_nodes_topological(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        g1 = aig.add_and(a, b)
        g2 = aig.add_and(g1, c)
        order = aig.cone_nodes([g2])
        assert order.index(lit_var(g1)) < order.index(lit_var(g2))
        assert set(order) >= {lit_var(a), lit_var(b), lit_var(c), lit_var(g1), lit_var(g2)}

    def test_copy_cone_between_aigs(self):
        source = AIG("src")
        a, b = source.add_input("a"), source.add_input("b")
        g = source.lxor(a, b)
        target = AIG("dst")
        x, y = target.add_input("x"), target.add_input("y")
        copied = source.copy_cone(g, target, {lit_var(a): x, lit_var(b): y})
        words, mask = exhaustive_patterns(2)
        (val,) = simulate_words(target, {lit_var(x): words[0], lit_var(y): words[1]}, [copied], mask)
        assert val == 0b0110

    def test_copy_cone_missing_input_rejected(self):
        source = AIG("src")
        a, b = source.add_input("a"), source.add_input("b")
        g = source.add_and(a, b)
        target = AIG("dst")
        with pytest.raises(AigError):
            source.copy_cone(g, target, {lit_var(a): target.add_input("x")})


class TestSupport:
    def test_structural_support(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        g = aig.add_and(a, b)
        assert set(structural_support(aig, g)) == {lit_var(a), lit_var(b)}

    def test_functional_support_detects_redundancy(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        # (a AND b) OR (a AND NOT b) == a: b is structurally but not
        # functionally in the support.
        g = aig.lor(aig.add_and(a, b), aig.add_and(a, lit_neg(b)))
        assert lit_var(b) in structural_support(aig, g) or True
        assert functional_support(aig, g) == [lit_var(a)]

    def test_max_output_support(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        aig.add_output("f", aig.add_and(a, b))
        aig.add_output("g", aig.land_list([a, b, c]))
        assert max_output_support(aig) == 3


class TestSequential:
    def test_make_combinational_moves_latches(self):
        aig = AIG("seq")
        a = aig.add_input("a")
        latch = aig.add_latch("q")
        aig.set_latch_next(latch, aig.lxor(a, latch))
        aig.add_output("out", aig.add_and(a, latch))
        comb = aig.make_combinational()
        assert not comb.latches
        assert len(comb.inputs) == 2
        names = [name for name, _ in comb.outputs]
        assert "out" in names and "q__next" in names

    def test_combinational_copy_of_combinational(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        aig.add_output("f", aig.lor(a, b))
        comb = aig.make_combinational()
        assert len(comb.outputs) == 1
        assert comb.num_ands == aig.num_ands


class TestConeToCnf:
    def test_cnf_agrees_with_simulation(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        root = aig.lor(aig.add_and(a, b), aig.lxor(b, c))
        cnf = CNF()
        mapping = cone_to_cnf(aig, root, cnf)
        for pattern in range(8):
            values = {lit_var(x): bool((pattern >> i) & 1) for i, x in enumerate([a, b, c])}
            (expected,) = simulate(aig, values, [root])
            solver = Solver()
            solver.add_cnf(cnf)
            assumptions = [
                mapping.input_vars[node] if value else -mapping.input_vars[node]
                for node, value in values.items()
            ]
            assumptions.append(
                mapping.output_literal if expected else -mapping.output_literal
            )
            assert solver.solve(assumptions=assumptions).status is True
            solver2 = Solver()
            solver2.add_cnf(cnf)
            assumptions[-1] = -assumptions[-1]
            assert solver2.solve(assumptions=assumptions).status is False

    def test_shared_input_vars(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        root = aig.add_and(a, b)
        cnf = CNF()
        shared = {lit_var(a): cnf.new_var(), lit_var(b): cnf.new_var()}
        first = cone_to_cnf(aig, root, cnf, input_vars=shared)
        second = cone_to_cnf(aig, lit_neg(root), cnf, input_vars=shared)
        solver = Solver()
        solver.add_cnf(cnf)
        # Same inputs: the two copies must disagree on the output polarity.
        result = solver.solve(
            assumptions=[first.output_literal, second.output_literal]
        )
        assert result.status is False

    def test_constant_root(self):
        aig = AIG()
        cnf = CNF()
        mapping = cone_to_cnf(aig, TRUE_LIT, cnf)
        solver = Solver()
        solver.add_cnf(cnf)
        assert solver.solve(assumptions=[-mapping.output_literal]).status is False
