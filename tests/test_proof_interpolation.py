"""Tests for resolution-proof logging and Craig interpolation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.aig.simulate import exhaustive_patterns, simulate_words
from repro.errors import SolverError
from repro.sat.interpolate import InterpolantBuilder, interpolant
from repro.sat.proof import Proof, ResolutionChain, resolve
from repro.sat.solver import Solver

from tests.reference import brute_force_sat


class TestResolve:
    def test_basic_resolution(self):
        assert resolve({1, 2}, {-1, 3}, 1) == {2, 3}

    def test_symmetric_polarity(self):
        assert resolve({-1, 2}, {1, 3}, 1) == {2, 3}

    def test_missing_pivot_raises(self):
        with pytest.raises(SolverError):
            resolve({1, 2}, {3}, 1)


class TestProofRecording:
    def _refute(self, clauses):
        solver = Solver(proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.status is False
        return solver.proof()

    def test_trivial_contradiction(self):
        proof = self._refute([[1], [-1]])
        assert proof.has_refutation
        assert proof.check()

    def test_requires_propagation(self):
        proof = self._refute([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert proof.check()

    def test_pigeonhole_proof_checks(self):
        holes = 3
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        proof = self._refute(clauses)
        assert proof.check()

    def test_empty_clause_input(self):
        solver = Solver(proof=True)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2])
        assert solver.solve().status is False
        assert solver.proof().check()

    def test_proof_not_available_without_flag(self):
        solver = Solver()
        solver.add_clause([1])
        with pytest.raises(SolverError):
            solver.proof()

    def test_no_refutation_for_sat(self):
        solver = Solver(proof=True)
        solver.add_clause([1, 2])
        assert solver.solve().status is True
        assert not solver.proof().has_refutation

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_unsat_proofs_check(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=5))
        clauses = []
        for _ in range(data.draw(st.integers(min_value=4, max_value=18))):
            clause = [
                data.draw(st.integers(min_value=1, max_value=num_vars))
                * data.draw(st.sampled_from([1, -1]))
                for _ in range(data.draw(st.integers(min_value=1, max_value=3)))
            ]
            clauses.append(clause)
        if brute_force_sat(clauses, num_vars) is not None:
            return
        solver = Solver(proof=True)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().status is False
        assert solver.proof().check()


class TestChainReplay:
    def test_mismatched_chain_detected(self):
        proof = Proof()
        a = proof.add_original([1, 2])
        b = proof.add_original([-1, 3])
        chain = ResolutionChain(antecedents=[a, b], pivots=[1])
        assert proof.replay_chain(chain) == {2, 3}

    def test_empty_chain_rejected(self):
        proof = Proof()
        with pytest.raises(SolverError):
            proof.replay_chain(ResolutionChain(antecedents=[], pivots=[]))


def _build_interpolation_instance(a_clauses, b_clauses, shared_vars):
    """Solve A ∧ B (must be UNSAT) and build the interpolant as a function."""
    solver = Solver(proof=True)
    a_ids = []
    for clause in a_clauses:
        cid = solver.add_clause(clause)
        if cid is not None:
            a_ids.append(cid)
    for clause in b_clauses:
        solver.add_clause(clause)
    result = solver.solve()
    assert result.status is False
    aig = AIG("itp")
    var_map = {v: aig.add_input(f"v{v}") for v in shared_vars}
    root = interpolant(solver.proof(), a_ids, aig, var_map)
    aig.add_output("itp", root)
    inputs = [aig.input_by_name(f"v{v}") for v in shared_vars]
    return BooleanFunction(aig, root, inputs)


def _check_interpolant_properties(a_clauses, b_clauses, num_vars):
    a_vars = {abs(l) for c in a_clauses for l in c}
    b_vars = {abs(l) for c in b_clauses for l in c}
    shared = sorted(a_vars & b_vars)
    itp = _build_interpolation_instance(a_clauses, b_clauses, shared)
    # Property 1: A -> I.  Property 2: I AND B is unsatisfiable.
    for bits in range(1 << num_vars):
        assignment = {v: bool((bits >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        a_holds = all(
            any(assignment[abs(l)] if l > 0 else not assignment[abs(l)] for l in c)
            for c in a_clauses
        )
        b_holds = all(
            any(assignment[abs(l)] if l > 0 else not assignment[abs(l)] for l in c)
            for c in b_clauses
        )
        itp_value = itp.evaluate({f"v{v}": assignment[v] for v in shared})
        if a_holds:
            assert itp_value, "A does not imply the interpolant"
        if b_holds:
            assert not itp_value, "interpolant is not inconsistent with B"


class TestInterpolation:
    def test_textbook_example(self):
        # A = (x) AND (-x OR s); B = (-s OR y) AND (-y) — shared variable s.
        a = [[1], [-1, 2]]
        b = [[-2, 3], [-3]]
        _check_interpolant_properties(a, b, 3)

    def test_shared_only_instance(self):
        a = [[1, 2], [1, -2]]
        b = [[-1, 3], [-1, -3]]
        _check_interpolant_properties(a, b, 3)

    def test_unsat_inside_a(self):
        # The refutation may live entirely inside A; the interpolant must then
        # be false (inconsistent with the empty B condition means B arbitrary).
        a = [[1], [-1]]
        b = [[2, 3]]
        _check_interpolant_properties(a, b, 3)

    def test_unsat_inside_b(self):
        a = [[1, 2]]
        b = [[3], [-3]]
        _check_interpolant_properties(a, b, 3)

    def test_interpolant_vars_within_shared(self):
        # A forces x2 through the A-local variable x1; B refutes x2 through
        # the B-local variables x3 and x4.  Shared variables: {2}.
        a = [[1], [-1, 2]]
        b = [[-2, 3], [-3, 4], [-4]]
        a_vars = {1, 2}
        b_vars = {2, 3, 4}
        shared = sorted(a_vars & b_vars)
        itp = _build_interpolation_instance(a, b, shared)
        assert set(itp.support_names()) <= {f"v{v}" for v in shared}
        _check_interpolant_properties(a, b, 4)

    def test_missing_shared_mapping_rejected(self):
        solver = Solver(proof=True)
        a_ids = [solver.add_clause([1]), solver.add_clause([-1, 2])]
        solver.add_clause([-2])
        assert solver.solve().status is False
        aig = AIG("itp")
        with pytest.raises(SolverError):
            InterpolantBuilder(solver.proof(), [c for c in a_ids if c is not None], aig, {})

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_split_interpolants(self, data):
        num_vars = data.draw(st.integers(min_value=2, max_value=5))
        clauses = []
        for _ in range(data.draw(st.integers(min_value=6, max_value=16))):
            clause = [
                data.draw(st.integers(min_value=1, max_value=num_vars))
                * data.draw(st.sampled_from([1, -1]))
                for _ in range(data.draw(st.integers(min_value=1, max_value=3)))
            ]
            clauses.append(clause)
        if brute_force_sat(clauses, num_vars) is not None:
            return
        split = data.draw(st.integers(min_value=0, max_value=len(clauses)))
        a_clauses, b_clauses = clauses[:split], clauses[split:]
        _check_interpolant_properties(a_clauses, b_clauses, num_vars)
