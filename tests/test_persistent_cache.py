"""Tests for the persistent (cross-run) cone cache.

The contract: a run with ``cache_dir`` set snapshots every replayable cone
entry to ``<cache_dir>/cone_cache.json``; a later run over the same
(operator, engine set, options fingerprint) context warms its in-memory
cache from the snapshot, replays those searches and produces a
fingerprint-identical :class:`CircuitReport`.  A corrupted or missing
snapshot is treated as empty, never as an error.
"""

import json
import os

import pytest

from repro.aig.aig import AIG
from repro.aig.signature import ConeCache, PersistentConeCache
from repro.circuits.generators import decomposable_by_construction
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.scheduler import PERSISTENT_CACHE_FILENAME
from repro.core.spec import ENGINE_LJH, ENGINE_STEP_MG, ENGINE_STEP_QD


def build_circuit(copies=3, seed=11):
    """One decomposable cone driving ``copies`` primary outputs."""
    aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=seed)
    root = aig.outputs[0][1]
    for k in range(1, copies):
        aig.add_output(f"f{k}", root)
    return aig


def run(aig, cache_dir, engines=(ENGINE_STEP_MG,), jobs=1, **option_kwargs):
    options = EngineOptions(cache_dir=str(cache_dir), jobs=jobs, **option_kwargs)
    return BiDecomposer(options).decompose_circuit(aig, "or", list(engines))


class TestColdWarmRoundTrip:
    def test_second_run_is_warm_and_fingerprint_identical(self, tmp_path):
        aig = build_circuit()
        cold = run(aig, tmp_path)
        assert cold.schedule["persistent_loaded"] == 0
        assert cold.schedule["persistent_hits"] == 0
        assert cold.schedule["persistent_saved"] == 1
        assert os.path.exists(tmp_path / PERSISTENT_CACHE_FILENAME)

        warm = run(aig, tmp_path)
        assert warm.schedule["persistent_loaded"] == 1
        assert warm.schedule["persistent_hits"] >= 1
        assert warm.schedule["unique_cones"] == 1
        assert warm.fingerprint() == cold.fingerprint()

    def test_fully_warm_run_does_not_rewrite_snapshot(self, tmp_path):
        aig = build_circuit()
        run(aig, tmp_path)
        path = tmp_path / PERSISTENT_CACHE_FILENAME
        before = path.stat().st_mtime_ns
        warm = run(aig, tmp_path)
        # Nothing new was computed: no entries absorbed, file untouched.
        assert warm.schedule["persistent_saved"] == 0
        assert path.stat().st_mtime_ns == before

    def test_warm_run_skips_every_search(self, tmp_path):
        aig = build_circuit(copies=4)
        cold = run(aig, tmp_path)
        assert cold.schedule["cache_misses"] == 1  # one unique cone searched
        warm = run(aig, tmp_path)
        # Every output replays: no fresh search at all on the warm run.
        assert warm.schedule["cache_misses"] == 0
        assert warm.schedule["cache_hits"] == 4
        assert warm.fingerprint() == cold.fingerprint()

    def test_warm_parallel_run_reports_warm_cache_fallback(self, tmp_path):
        aig = build_circuit(copies=4)
        cold = run(aig, tmp_path)
        warm = run(aig, tmp_path, jobs=4)
        # All cones answer from the snapshot: forking a pool would be pure
        # overhead, and the schedule says exactly that.
        assert warm.schedule["fallback"] == "warm-cache"
        assert warm.schedule["jobs"] == 1
        assert warm.fingerprint() == cold.fingerprint()

    def test_multi_engine_round_trip(self, tmp_path):
        aig = build_circuit()
        engines = (ENGINE_STEP_MG, ENGINE_STEP_QD, ENGINE_LJH)
        cold = run(aig, tmp_path, engines=engines)
        warm = run(aig, tmp_path, engines=engines)
        assert warm.schedule["persistent_hits"] >= 1
        assert warm.fingerprint() == cold.fingerprint()
        for output in warm.outputs:
            assert set(output.results) == set(engines)

    def test_extraction_reruns_on_warm_replay(self, tmp_path):
        """fA/fB are not persisted; replay re-extracts and re-verifies."""
        aig = build_circuit()
        run(aig, tmp_path)
        warm = run(aig, tmp_path, verify=True)
        result = warm.outputs[0].results[ENGINE_STEP_MG]
        assert result.decomposed
        assert result.fa is not None and result.fb is not None


class TestContextIsolation:
    def test_different_options_do_not_share_entries(self, tmp_path):
        aig = build_circuit()
        run(aig, tmp_path)
        other = run(aig, tmp_path, per_call_timeout=2.5)
        # Same circuit, different search budget: different context, no reuse.
        assert other.schedule["persistent_hits"] == 0

    def test_different_engine_sets_do_not_share_entries(self, tmp_path):
        aig = build_circuit()
        run(aig, tmp_path, engines=(ENGINE_STEP_MG,))
        other = run(aig, tmp_path, engines=(ENGINE_STEP_MG, ENGINE_STEP_QD))
        assert other.schedule["persistent_hits"] == 0

    def test_engine_order_is_irrelevant(self, tmp_path):
        aig = build_circuit()
        cold = run(aig, tmp_path, engines=(ENGINE_STEP_MG, ENGINE_STEP_QD))
        warm = run(aig, tmp_path, engines=(ENGINE_STEP_QD, ENGINE_STEP_MG))
        assert warm.schedule["persistent_hits"] >= 1
        assert warm.fingerprint() == cold.fingerprint()

    def test_no_dedup_disables_persistence(self, tmp_path):
        aig = build_circuit()
        report = run(aig, tmp_path, dedup=False)
        assert "persistent_hits" not in report.schedule
        assert not os.path.exists(tmp_path / PERSISTENT_CACHE_FILENAME)


class TestCorruption:
    def test_corrupted_snapshot_is_ignored(self, tmp_path):
        aig = build_circuit()
        path = tmp_path / PERSISTENT_CACHE_FILENAME
        path.write_text("{ this is not json")
        report = run(aig, tmp_path)
        assert report.schedule["persistent_loaded"] == 0
        assert report.schedule["persistent_hits"] == 0
        # The run rewrote a valid snapshot over the corrupted one ...
        payload = json.loads(path.read_text())
        assert payload["version"] == PersistentConeCache.VERSION
        # ... which the next run warms from normally.
        warm = run(aig, tmp_path)
        assert warm.schedule["persistent_hits"] >= 1

    def test_wrong_version_is_ignored(self, tmp_path):
        path = tmp_path / PERSISTENT_CACHE_FILENAME
        path.write_text(json.dumps({"version": 999, "contexts": {"c": {}}}))
        cache = PersistentConeCache(str(path))
        assert cache.loaded_entries == 0

    def test_missing_file_is_empty(self, tmp_path):
        cache = PersistentConeCache(str(tmp_path / "nope" / "cone_cache.json"))
        assert cache.loaded_entries == 0
        assert cache.warm(ConeCache(), "any-context") == 0

    def test_malformed_context_value_is_dropped_not_fatal(self, tmp_path):
        """A context whose value is not a dict must not crash warm/absorb."""
        aig = build_circuit()
        cold = run(aig, tmp_path)
        path = tmp_path / PERSISTENT_CACHE_FILENAME
        payload = json.loads(path.read_text())
        (context,) = payload["contexts"]
        payload["contexts"]["other-context"] = ["junk"]
        payload["contexts"][context] = "not-a-dict"
        path.write_text(json.dumps(payload))
        report = run(aig, tmp_path)  # would raise AttributeError before
        assert report.schedule["persistent_loaded"] == 0
        assert report.fingerprint() == cold.fingerprint()

    def test_undecodable_entry_skipped_without_poisoning_rest(self, tmp_path):
        aig = build_circuit()
        run(aig, tmp_path)
        path = tmp_path / PERSISTENT_CACHE_FILENAME
        payload = json.loads(path.read_text())
        (context,) = payload["contexts"]
        payload["contexts"][context]['["bogus",[0]]'] = {"inputs": "garbage"}
        path.write_text(json.dumps(payload))
        warm = run(aig, tmp_path)
        assert warm.schedule["persistent_loaded"] == 1  # the good entry
        assert warm.schedule["persistent_hits"] >= 1


class TestSnapshotFormat:
    def test_snapshot_is_replayable_json(self, tmp_path):
        aig = build_circuit()
        run(aig, tmp_path, engines=(ENGINE_STEP_MG, ENGINE_STEP_QD))
        payload = json.loads((tmp_path / PERSISTENT_CACHE_FILENAME).read_text())
        assert payload["version"] == PersistentConeCache.VERSION
        (context,) = payload["contexts"]
        assert context.startswith("op=or|engines=STEP-MG,STEP-QD|")
        (entry,) = payload["contexts"][context].values()
        assert set(entry["results"][0]) >= {
            "engine",
            "operator",
            "decomposed",
            "partition",
            "optimum_proven",
            "stats",
        }

    def test_snapshot_bytes_are_canonical(self, tmp_path):
        """Same entries, any absorption order -> byte-identical snapshots.

        Two fresh cache directories populated by identical runs must end
        up with byte-identical ``cone_cache.json`` files (CI's warm-cache
        job diffs them directly), and a snapshot whose contexts/entries
        arrive in a different order must serialise identically too.
        """
        aig = build_circuit()
        run(aig, tmp_path / "a", engines=(ENGINE_STEP_MG, ENGINE_STEP_QD))
        run(aig, tmp_path / "b", engines=(ENGINE_STEP_MG, ENGINE_STEP_QD))
        first = (tmp_path / "a" / PERSISTENT_CACHE_FILENAME).read_bytes()
        second = (tmp_path / "b" / PERSISTENT_CACHE_FILENAME).read_bytes()
        assert first == second

        # Different in-memory insertion order, same serialised bytes.
        forward = PersistentConeCache(str(tmp_path / "fwd.json"))
        backward = PersistentConeCache(str(tmp_path / "bwd.json"))
        entries = [("ctx-a", '["k1"]'), ("ctx-b", '["k2"]')]
        for context, key in entries:
            forward._contexts.setdefault(context, {})[key] = {"inputs": []}
        for context, key in reversed(entries):
            backward._contexts.setdefault(context, {})[key] = {"inputs": []}
        forward.save()
        backward.save()
        assert (tmp_path / "fwd.json").read_bytes() == (
            tmp_path / "bwd.json"
        ).read_bytes()

    def test_absorb_then_warm_round_trip(self, tmp_path):
        """Direct ConeCache -> snapshot -> ConeCache interchange."""
        aig = build_circuit()
        path = str(tmp_path / "c.json")
        source = ConeCache()
        from repro.core.scheduler import BatchScheduler

        scheduler = BatchScheduler(BiDecomposer(EngineOptions()))
        jobs = scheduler.plan(aig)
        record = scheduler._execute_job(
            aig, jobs[0], "or", [ENGINE_STEP_MG], "c", source
        )
        assert record.results[ENGINE_STEP_MG].decomposed
        snapshot = PersistentConeCache(path)
        assert snapshot.absorb(source, "ctx") == 1
        snapshot.save()

        target = ConeCache()
        assert PersistentConeCache(path).warm(target, "ctx") == 1
        (key, value) = next(iter(target.items()))
        (source_key, source_value) = next(iter(source.items()))
        assert key == source_key
        names, restored = value
        source_names, original = source_value
        assert names == source_names
        restored_result = restored.results[ENGINE_STEP_MG]
        original_result = original.results[ENGINE_STEP_MG]
        assert restored_result.fingerprint()[:6] == original_result.fingerprint()[:6]


class TestConcurrentSaves:
    """save() must merge with the on-disk snapshot, not clobber it."""

    def test_two_processes_sharing_a_directory_accumulate(self, tmp_path):
        """Simulate the racy flow: both instances load the (empty) snapshot,
        each absorbs a different circuit's entries, both save.  Before the
        merge-on-save fix the second save dropped the first one's entries
        (last-writer-wins); now the file holds the union."""
        aig_a = build_circuit(seed=11)
        aig_b = build_circuit(seed=12)
        path = str(tmp_path / "shared.json")

        from repro.core.scheduler import BatchScheduler

        scheduler = BatchScheduler(BiDecomposer(EngineOptions()))
        caches = []
        for aig in (aig_a, aig_b):
            cache = ConeCache()
            job = scheduler.plan(aig)[0]
            scheduler._execute_job(aig, job, "or", [ENGINE_STEP_MG], aig.name, cache)
            caches.append(cache)

        # Both "processes" open the snapshot before either saved.
        first, second = PersistentConeCache(path), PersistentConeCache(path)
        assert first.absorb(caches[0], "ctx") == 1
        assert second.absorb(caches[1], "ctx") == 1
        first.save()
        second.save()  # re-reads the file first: must keep first's entry

        final = PersistentConeCache(path)
        assert final.loaded_entries == 2
        target = ConeCache()
        assert final.warm(target, "ctx") == 2

    def test_merge_spans_distinct_contexts(self, tmp_path):
        aig = build_circuit(seed=13)
        path = str(tmp_path / "ctx.json")
        from repro.core.scheduler import BatchScheduler

        scheduler = BatchScheduler(BiDecomposer(EngineOptions()))
        cache = ConeCache()
        job = scheduler.plan(aig)[0]
        scheduler._execute_job(aig, job, "or", [ENGINE_STEP_MG], aig.name, cache)

        first, second = PersistentConeCache(path), PersistentConeCache(path)
        first.absorb(cache, "ctx-one")
        second.absorb(cache, "ctx-two")
        first.save()
        second.save()
        payload = json.loads(open(path).read())
        assert set(payload["contexts"]) == {"ctx-one", "ctx-two"}

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        aig = build_circuit(seed=14)
        run(aig, tmp_path)
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith(PERSISTENT_CACHE_FILENAME) and name != PERSISTENT_CACHE_FILENAME
        ]
        assert leftovers == []


class TestCompaction:
    """max_entries: LRU-by-last-hit eviction at save time (PR 2 follow-up)."""

    def _entry(self, name):
        from repro.core.result import BiDecResult, OutputResult

        record = OutputResult(circuit="c", output_name=name, num_support=2)
        record.results["STEP-MG"] = BiDecResult(
            engine="STEP-MG", operator="or", decomposed=False
        )
        return (("a", "b"), record)

    def _absorbed(self, path, keys, max_entries=None, hit=()):
        cache = ConeCache()
        for key in keys:
            cache.store(key, self._entry(str(key)))
        cache.hit_keys.update(hit)
        persistent = PersistentConeCache(path, max_entries=max_entries)
        persistent.absorb(cache, "ctx")
        persistent.save()
        return persistent

    @staticmethod
    def _stored(path):
        with open(path) as handle:
            payload = json.load(handle)
        return {
            key
            for entries in payload["contexts"].values()
            for key in entries
        }

    def test_save_evicts_down_to_the_bound(self, tmp_path):
        path = str(tmp_path / "cone_cache.json")
        persistent = self._absorbed(path, [(1,), (2,), (3,), (4,)], max_entries=2)
        assert persistent.evicted_entries == 2
        assert len(self._stored(path)) == 2

    def test_unbounded_snapshots_are_untouched(self, tmp_path):
        path = str(tmp_path / "cone_cache.json")
        self._absorbed(path, [(1,), (2,), (3,)])
        assert len(self._stored(path)) == 3

    def test_recently_hit_entries_survive_eviction(self, tmp_path):
        path = str(tmp_path / "cone_cache.json")
        # Run 1: three entries stored, bound 2 -> one evicted (all equal
        # recency, deterministic tie-break).
        self._absorbed(path, [(1,), (2,), (3,)], max_entries=2)
        survivors = self._stored(path)
        assert len(survivors) == 2
        # Run 2: warm both survivors, HIT only one of them, and absorb a
        # new entry; the un-hit survivor is the eviction victim.
        persistent = PersistentConeCache(path, max_entries=2)
        cache = ConeCache()
        persistent.warm(cache, "ctx")
        warmed = sorted(cache.items(), key=lambda item: str(item[0]))
        hit_key = warmed[0][0]
        assert cache.lookup(hit_key) is not None  # marks recency
        cache.store((9, 9), self._entry("new"))
        persistent.absorb(cache, "ctx")
        persistent.save()
        stored = self._stored(path)
        assert len(stored) == 2
        # The hit key is still present; the un-hit one is gone.
        hit_json = json.dumps(hit_key, separators=(",", ":"))
        unhit_json = json.dumps(warmed[1][0], separators=(",", ":"))
        assert hit_json in stored
        assert unhit_json not in stored

    def test_recency_bumps_alone_mark_the_snapshot_dirty(self, tmp_path):
        path = str(tmp_path / "cone_cache.json")
        self._absorbed(path, [(1,)], max_entries=5)
        persistent = PersistentConeCache(path, max_entries=5)
        cache = ConeCache()
        persistent.warm(cache, "ctx")
        (key, _value), = list(cache.items())
        cache.lookup(key)
        assert persistent.absorb(cache, "ctx") == 0  # nothing new
        assert persistent.dirty  # but recency moved
        persistent.save()
        assert not persistent.dirty

    def test_fully_warm_unbounded_run_stays_rewrite_free(self, tmp_path):
        """The PR 2 optimisation must survive: without a bound, a warm
        run neither dirties nor rewrites the snapshot."""
        path = str(tmp_path / "cone_cache.json")
        self._absorbed(path, [(1,)])
        before = os.stat(path).st_mtime_ns
        persistent = PersistentConeCache(path)
        cache = ConeCache()
        persistent.warm(cache, "ctx")
        (key, _value), = list(cache.items())
        cache.lookup(key)
        assert persistent.absorb(cache, "ctx") == 0
        assert not persistent.dirty
        assert os.stat(path).st_mtime_ns == before

    def test_generation_clock_survives_reload(self, tmp_path):
        path = str(tmp_path / "cone_cache.json")
        self._absorbed(path, [(1,)], max_entries=5)
        second = self._absorbed(path, [(2,)], max_entries=5)
        with open(path) as handle:
            payload = json.load(handle)
        generations = {
            entry["g"]
            for entries in payload["contexts"].values()
            for entry in entries.values()
        }
        assert len(generations) == 2  # run 2's entry is newer than run 1's
        assert second.max_entries == 5

    def test_bad_max_entries_rejected(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="max_entries"):
            PersistentConeCache(str(tmp_path / "x.json"), max_entries=0)

    def test_end_to_end_bound_via_cache_policy(self, tmp_path):
        """Session + CachePolicy(max_entries): the snapshot never exceeds
        the bound across many distinct circuits."""
        from repro.api import CachePolicy, DecompositionRequest, Session

        policy = CachePolicy(directory=str(tmp_path), max_entries=2)
        with Session() as session:
            for seed in (21, 22, 23, 24, 25):
                aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=seed)
                session.run(
                    DecompositionRequest(
                        circuit=aig,
                        operator="or",
                        engines=(ENGINE_STEP_MG,),
                        cache=policy,
                    )
                )
        path = tmp_path / PERSISTENT_CACHE_FILENAME
        with open(path) as handle:
            payload = json.load(handle)
        assert sum(len(v) for v in payload["contexts"].values()) <= 2
