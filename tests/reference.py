"""Brute-force reference implementations used as oracles in the tests.

Everything here works directly on explicit truth tables (integers whose bit
``p`` is the function value on input pattern ``p``), independently of the
SAT, BDD and QBF machinery under test.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def truth_table_of(function) -> Tuple[int, int]:
    """Return (table, num_inputs) of a BooleanFunction."""
    return function.truth_table(), function.num_inputs


def evaluate_table(table: int, pattern: int) -> bool:
    return bool((table >> pattern) & 1)


def cofactor_table(table: int, num_inputs: int, position: int, value: bool) -> Tuple[int, int]:
    """Cofactor a truth table with respect to input ``position``."""
    new_table = 0
    out_bit = 0
    for pattern in range(1 << num_inputs):
        if ((pattern >> position) & 1) != int(value):
            continue
        if evaluate_table(table, pattern):
            new_table |= 1 << out_bit
        out_bit += 1
    return new_table, num_inputs - 1


def _project(pattern: int, positions: Sequence[int]) -> Tuple[int, ...]:
    return tuple((pattern >> p) & 1 for p in positions)


def or_decomposable(
    table: int, num_inputs: int, xa: Sequence[int], xb: Sequence[int]
) -> bool:
    """Reference OR decomposability: ``f <= (forall XB f) OR (forall XA f)``."""
    xc = [i for i in range(num_inputs) if i not in set(xa) | set(xb)]
    fa_max: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], bool] = {}
    fb_max: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], bool] = {}
    for pattern in range(1 << num_inputs):
        key_a = (_project(pattern, xa), _project(pattern, xc))
        key_b = (_project(pattern, xb), _project(pattern, xc))
        value = evaluate_table(table, pattern)
        fa_max[key_a] = fa_max.get(key_a, True) and value
        fb_max[key_b] = fb_max.get(key_b, True) and value
    for pattern in range(1 << num_inputs):
        if not evaluate_table(table, pattern):
            continue
        key_a = (_project(pattern, xa), _project(pattern, xc))
        key_b = (_project(pattern, xb), _project(pattern, xc))
        if not (fa_max[key_a] or fb_max[key_b]):
            return False
    return True


def and_decomposable(
    table: int, num_inputs: int, xa: Sequence[int], xb: Sequence[int]
) -> bool:
    """AND decomposability: the dual of the OR condition."""
    full = (1 << (1 << num_inputs)) - 1
    return or_decomposable(full ^ table, num_inputs, xa, xb)


def xor_decomposable(
    table: int, num_inputs: int, xa: Sequence[int], xb: Sequence[int]
) -> bool:
    """XOR decomposability: the rectangle (rank-one over GF(2)) condition."""
    xc = [i for i in range(num_inputs) if i not in set(xa) | set(xb)]
    by_slice: Dict[Tuple[int, ...], Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], bool]] = {}
    for pattern in range(1 << num_inputs):
        slice_key = _project(pattern, xc)
        cell = (_project(pattern, xa), _project(pattern, xb))
        by_slice.setdefault(slice_key, {})[cell] = evaluate_table(table, pattern)
    for cells in by_slice.values():
        a_values = sorted({cell[0] for cell in cells})
        b_values = sorted({cell[1] for cell in cells})
        a0, b0 = a_values[0], b_values[0]
        for a in a_values:
            for b in b_values:
                expected = cells[(a, b0)] ^ cells[(a0, b)] ^ cells[(a0, b0)]
                if cells[(a, b)] != expected:
                    return False
    return True


def decomposable(
    table: int, num_inputs: int, operator: str, xa: Sequence[int], xb: Sequence[int]
) -> bool:
    if operator == "or":
        return or_decomposable(table, num_inputs, xa, xb)
    if operator == "and":
        return and_decomposable(table, num_inputs, xa, xb)
    if operator == "xor":
        return xor_decomposable(table, num_inputs, xa, xb)
    raise ValueError(operator)


def all_nontrivial_partitions(num_inputs: int) -> Iterable[Tuple[List[int], List[int], List[int]]]:
    """Enumerate all non-trivial partitions (XA, XB, XC) of input positions."""
    for assignment in product((0, 1, 2), repeat=num_inputs):
        xa = [i for i, a in enumerate(assignment) if a == 0]
        xb = [i for i, a in enumerate(assignment) if a == 1]
        xc = [i for i, a in enumerate(assignment) if a == 2]
        if not xa or not xb:
            continue
        yield xa, xb, xc


def best_metric(
    table: int, num_inputs: int, operator: str, metric: str
) -> Optional[int]:
    """Brute-force optimum of a discrete metric over decomposable partitions.

    ``metric`` is ``"shared"`` (|XC|), ``"imbalance"`` (||XA|-|XB||) or
    ``"combined"``.  Returns ``None`` when no non-trivial partition is
    decomposable.
    """
    best: Optional[int] = None
    for xa, xb, xc in all_nontrivial_partitions(num_inputs):
        if not decomposable(table, num_inputs, operator, xa, xb):
            continue
        if metric == "shared":
            value = len(xc)
        elif metric == "imbalance":
            value = abs(len(xa) - len(xb))
        elif metric == "combined":
            value = len(xc) + abs(len(xa) - len(xb))
        else:
            raise ValueError(metric)
        if best is None or value < best:
            best = value
    return best


def brute_force_sat(clauses: Sequence[Sequence[int]], num_vars: int) -> Optional[Dict[int, bool]]:
    """Brute-force SAT solving for tiny CNFs (oracle for the CDCL solver)."""
    for bits in range(1 << num_vars):
        assignment = {v: bool((bits >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        ok = True
        for clause in clauses:
            if not any(
                assignment[abs(l)] if l > 0 else not assignment[abs(l)] for l in clause
            ):
                ok = False
                break
        if ok:
            return assignment
    return None
