"""Tests for VariablePartition and the paper's quality metrics."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import VariablePartition
from repro.errors import DecompositionError


class TestConstruction:
    def test_blocks_stored_as_tuples(self):
        p = VariablePartition(["a"], ["b"], ["c"])
        assert p.xa == ("a",) and p.xb == ("b",) and p.xc == ("c",)

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(DecompositionError):
            VariablePartition(("a",), ("a",), ())

    def test_from_alpha_beta(self):
        p = VariablePartition.from_alpha_beta(
            ["x", "y", "z"],
            {"x": True, "y": False, "z": False},
            {"x": False, "y": True, "z": False},
        )
        assert p.xa == ("x",) and p.xb == ("y",) and p.xc == ("z",)

    def test_from_alpha_beta_rejects_both_true(self):
        with pytest.raises(DecompositionError):
            VariablePartition.from_alpha_beta(["x"], {"x": True}, {"x": True})

    def test_membership(self):
        p = VariablePartition(("a",), ("b",), ("c",))
        assert p.membership() == {"a": "A", "b": "B", "c": "C"}

    def test_validate_against(self):
        p = VariablePartition(("a",), ("b",), ())
        p.validate_against(["a", "b"])
        with pytest.raises(DecompositionError):
            p.validate_against(["a", "b", "c"])
        with pytest.raises(DecompositionError):
            p.validate_against(["a"])

    def test_str_format(self):
        assert str(VariablePartition(("a",), ("b",), ("c",))) == "{a | b | c}"


class TestProperties:
    def test_trivial_detection(self):
        assert VariablePartition((), ("b",), ("c",)).is_trivial
        assert VariablePartition(("a",), (), ()).is_trivial
        assert not VariablePartition(("a",), ("b",), ()).is_trivial

    def test_disjoint_detection(self):
        assert VariablePartition(("a",), ("b",), ()).is_disjoint
        assert not VariablePartition(("a",), ("b",), ("c",)).is_disjoint

    def test_normalized_swaps_smaller_xa(self):
        p = VariablePartition(("a",), ("b", "c"), ())
        n = p.normalized()
        assert len(n.xa) >= len(n.xb)
        assert set(n.xa) == {"b", "c"}

    def test_normalized_keeps_order_when_already_normal(self):
        p = VariablePartition(("a", "b"), ("c",), ())
        assert p.normalized() is p


class TestMetrics:
    def test_disjointness_definition(self):
        p = VariablePartition(("a", "b"), ("c",), ("d",))
        assert p.disjointness == Fraction(1, 4)

    def test_balancedness_definition(self):
        p = VariablePartition(("a", "b", "c"), ("d",), ())
        assert p.balancedness == Fraction(2, 4)

    def test_perfect_partition(self):
        p = VariablePartition(("a", "b"), ("c", "d"), ())
        assert p.disjointness == 0
        assert p.balancedness == 0
        assert p.cost() == 0.0

    def test_cost_weights(self):
        p = VariablePartition(("a", "b"), ("c",), ("d",))
        assert p.cost(1.0, 0.0) == pytest.approx(0.25)
        assert p.cost(0.0, 1.0) == pytest.approx(0.25)
        assert p.cost(1.0, 1.0) == pytest.approx(0.5)

    def test_cost_weight_bounds(self):
        p = VariablePartition(("a",), ("b",), ())
        with pytest.raises(DecompositionError):
            p.cost(2.0, 0.0)

    def test_discrete_counters(self):
        p = VariablePartition(("a", "b", "c"), ("d",), ("e", "f"))
        assert p.shared_count == 2
        assert p.imbalance == 2
        assert p.combined_count == 4

    def test_empty_partition_metrics(self):
        p = VariablePartition((), (), ())
        assert p.disjointness == 0
        assert p.balancedness == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(["A", "B", "C"]), min_size=1, max_size=10))
    def test_metric_ranges(self, assignment):
        names = [f"x{i}" for i in range(len(assignment))]
        xa = tuple(n for n, kind in zip(names, assignment) if kind == "A")
        xb = tuple(n for n, kind in zip(names, assignment) if kind == "B")
        xc = tuple(n for n, kind in zip(names, assignment) if kind == "C")
        p = VariablePartition(xa, xb, xc)
        assert 0 <= p.disjointness <= 1
        assert 0 <= p.balancedness <= 1
        assert p.normalized().balancedness == p.balancedness
        assert p.normalized().disjointness == p.disjointness
        assert p.combined_count == p.shared_count + p.imbalance
