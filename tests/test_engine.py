"""End-to-end tests for the BiDecomposer driver (the STEP tool)."""

import pytest

from repro.aig.function import BooleanFunction
from repro.circuits.generators import (
    decomposable_by_construction,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.circuits.library import classic_circuit
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.spec import (
    ENGINE_BDD,
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
)
from repro.core.verify import verify_decomposition
from repro.errors import DecompositionError

ALL_ENGINES = [
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QD,
    ENGINE_STEP_QB,
    ENGINE_STEP_QDB,
    ENGINE_BDD,
]


@pytest.fixture(scope="module")
def step():
    return BiDecomposer(EngineOptions(verify=True, output_timeout=30.0))


@pytest.fixture(scope="module")
def or_function():
    aig, _, _, _ = decomposable_by_construction("or", 3, 3, 1, seed=7)
    return BooleanFunction.from_output(aig, "f")


class TestDecomposeFunction:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_every_engine_produces_a_verified_decomposition(self, step, or_function, engine):
        result = step.decompose_function(or_function, "or", engine=engine)
        assert result.decomposed
        assert result.fa is not None and result.fb is not None
        assert verify_decomposition(
            or_function, "or", result.fa, result.fb, result.partition
        )

    def test_qbf_engines_never_worse_than_mg(self, step, or_function):
        results = step.decompose_function_all(
            or_function, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB]
        )
        mg = results[ENGINE_STEP_MG]
        assert mg.decomposed
        assert results[ENGINE_STEP_QD].disjointness <= mg.disjointness
        assert results[ENGINE_STEP_QB].balancedness <= mg.balancedness
        assert results[ENGINE_STEP_QDB].combined_metric <= mg.combined_metric

    def test_small_support_skipped(self, step):
        f = BooleanFunction.from_truth_table(0b10, 1)
        result = step.decompose_function(f, "or", engine=ENGINE_STEP_QD)
        assert not result.decomposed

    def test_invalid_engine_rejected(self, step, or_function):
        with pytest.raises(DecompositionError):
            step.decompose_function(or_function, "or", engine="STEP-XX")

    def test_invalid_operator_rejected(self, step, or_function):
        with pytest.raises(DecompositionError):
            step.decompose_function(or_function, "nor", engine=ENGINE_STEP_QD)

    def test_extraction_can_be_disabled(self, or_function):
        step = BiDecomposer(EngineOptions(extract=False))
        result = step.decompose_function(or_function, "or", engine=ENGINE_STEP_MG)
        assert result.decomposed
        assert result.fa is None and result.fb is None

    def test_interpolation_extraction_option(self, or_function):
        step = BiDecomposer(EngineOptions(extraction="interpolation", verify=True))
        result = step.decompose_function(or_function, "or", engine=ENGINE_STEP_MG)
        assert result.decomposed
        assert result.fa is not None

    def test_xor_on_parity(self, step):
        f = BooleanFunction.from_output(parity_tree(5), "p")
        result = step.decompose_function(f, "xor", engine=ENGINE_STEP_QD)
        assert result.decomposed
        assert result.partition.is_disjoint
        assert result.optimum_proven

    def test_and_operator(self, step):
        aig, *_ = decomposable_by_construction("and", 3, 2, 1, seed=51)
        f = BooleanFunction.from_output(aig, "f")
        result = step.decompose_function(f, "and", engine=ENGINE_STEP_QDB)
        assert result.decomposed


class TestDecomposeOutputAndCircuit:
    def test_decompose_output_record(self, step):
        aig = mux_tree(2)
        record = step.decompose_output(aig, "y", "or", [ENGINE_STEP_MG, ENGINE_STEP_QD])
        assert record.output_name == "y"
        assert record.num_support == 6
        assert set(record.results) <= {ENGINE_STEP_MG, ENGINE_STEP_QD}

    def test_decompose_circuit_report(self):
        options = EngineOptions(output_timeout=20.0)
        step = BiDecomposer(options)
        aig = ripple_carry_adder(2)
        report = step.decompose_circuit(aig, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD])
        assert report.circuit == aig.name
        assert len(report.outputs) == len(aig.outputs)
        assert report.decomposed_count(ENGINE_STEP_QD) >= report.decomposed_count(ENGINE_STEP_MG) - len(
            aig.outputs
        )
        assert report.cpu_seconds(ENGINE_STEP_MG) >= 0.0

    def test_sequential_circuit_made_combinational(self):
        step = BiDecomposer(EngineOptions(output_timeout=20.0))
        aig = classic_circuit("seq_ctrl")
        report = step.decompose_circuit(aig, "or", [ENGINE_STEP_MG], max_outputs=3)
        assert report.outputs  # latch-derived outputs become decomposable POs

    def test_max_outputs_limit(self):
        step = BiDecomposer(EngineOptions(output_timeout=20.0))
        aig = ripple_carry_adder(3)
        report = step.decompose_circuit(aig, "or", [ENGINE_STEP_MG], max_outputs=2)
        assert len(report.outputs) == 2

    def test_max_support_filter(self):
        step = BiDecomposer(EngineOptions(max_support=3, output_timeout=20.0))
        aig = mux_tree(2)
        record = step.decompose_output(aig, "y", "or", [ENGINE_STEP_MG])
        assert record.results == {}

    def test_circuit_timeout_stops_early(self):
        step = BiDecomposer(EngineOptions(output_timeout=20.0))
        aig = ripple_carry_adder(3)
        report = step.decompose_circuit(aig, "or", [ENGINE_STEP_MG], circuit_timeout=0.0)
        assert len(report.outputs) == 0


class _ScriptedDeadline:
    """A deadline whose ``expired`` reads follow a fixed script.

    Once the script is exhausted every further read returns ``True``, so a
    count mismatch surfaces as a spurious timeout rather than silently
    passing.
    """

    def __init__(self, *script: bool) -> None:
        self._script = list(script)

    @property
    def expired(self) -> bool:
        if self._script:
            return self._script.pop(0)
        return True


class TestBddTimeoutFlag:
    def test_completed_search_is_not_flagged_timed_out(self):
        """Regression: BDD reported ``deadline.expired`` even on success.

        ``f = x0 OR x1`` seeds on the very first pair check, so the whole
        search reads the deadline exactly once (inside the seed loop).  The
        old code read it once more while building the result — after the
        search had already completed — and flagged the run timed out, which
        also made the scheduler refuse to memoise it.
        """
        function = BooleanFunction.from_truth_table(0b1110, 2)
        step = BiDecomposer(EngineOptions())
        result = step.decompose_function(
            function, "or", engine=ENGINE_BDD, deadline=_ScriptedDeadline(False)
        )
        assert result.decomposed
        assert not result.timed_out

    def test_truncated_seed_search_is_flagged(self):
        function = BooleanFunction.from_truth_table(0b1110, 2)
        step = BiDecomposer(EngineOptions())
        result = step.decompose_function(
            function, "or", engine=ENGINE_BDD, deadline=_ScriptedDeadline()
        )
        assert not result.decomposed
        assert result.timed_out

    def test_completed_bdd_result_is_memoised_by_scheduler(self):
        """The fixed flag keeps BDD results replayable under a budget."""
        aig, *_ = decomposable_by_construction("or", 3, 3, 1, seed=5)
        root = aig.outputs[0][1]
        aig.add_output("f_dup", root)
        report = BiDecomposer(EngineOptions()).decompose_circuit(
            aig, "or", [ENGINE_BDD], circuit_timeout=300.0
        )
        assert report.schedule["cache_hits"] == 1
        for output in report.outputs:
            assert output.results[ENGINE_BDD].decomposed
            assert not output.results[ENGINE_BDD].timed_out


class TestBootstrapExtractionSkip:
    def test_bootstrap_only_pass_skips_extraction(self, or_function, monkeypatch):
        """Regression: the inserted STEP-MG pass extracted fA/fB for nothing."""
        import repro.core.engine as engine_module

        calls = []
        real_extract = engine_module.extract_functions

        def counting_extract(*args, **kwargs):
            calls.append(args)
            return real_extract(*args, **kwargs)

        monkeypatch.setattr(engine_module, "extract_functions", counting_extract)
        step = BiDecomposer(EngineOptions())
        results = step.decompose_function_all(or_function, "or", [ENGINE_STEP_QD])
        assert set(results) == {ENGINE_STEP_QD}
        assert results[ENGINE_STEP_QD].decomposed
        # Exactly one extraction: the requested engine's.  The bootstrap
        # STEP-MG pass contributes only its partition.
        assert len(calls) == 1

    def test_requested_mg_still_extracts(self, or_function):
        step = BiDecomposer(EngineOptions())
        results = step.decompose_function_all(
            or_function, "or", [ENGINE_STEP_MG, ENGINE_STEP_QD]
        )
        for engine in (ENGINE_STEP_MG, ENGINE_STEP_QD):
            assert results[engine].fa is not None
            assert results[engine].fb is not None


class TestOptions:
    def test_invalid_extraction_rejected(self):
        with pytest.raises(DecompositionError):
            EngineOptions(extraction="nope")

    def test_invalid_strategy_rejected(self):
        with pytest.raises(DecompositionError):
            EngineOptions(qbf_strategy="zigzag")

    def test_result_summary_strings(self, step, or_function):
        result = step.decompose_function(or_function, "or", engine=ENGINE_STEP_QD)
        text = result.summary()
        assert "STEP-QD" in text and "eD=" in text
        miss = step.decompose_function(
            BooleanFunction.from_truth_table(0b0110, 2), "or", engine=ENGINE_STEP_QD
        )
        assert "not decomposable" in miss.summary()
