"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e .`` keeps working on environments without the
``wheel`` package (offline machines), where pip falls back to the legacy
``setup.py develop`` editable-install path.
"""

from setuptools import setup

setup()
