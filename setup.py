"""Build configuration, including the optional compiled solver kernel.

The package itself is pure Python and needs no build step.  One extension
module is declared — ``repro.sat._ckernel``, the compiled CDCL kernel — and
it is *optional*: when no C compiler is available the build warns and
continues, and :mod:`repro.sat.solver` falls back to the pure-Python
reference implementation at import time.  Build it in place with::

    python setup.py build_ext --inplace

(``STEP_PURE_PYTHON=1`` forces the pure path even when the kernel is built;
see docs/architecture.md, "Compiled kernel".)
"""

from setuptools import Extension, find_packages, setup

setup(
    name="repro-step",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    ext_modules=[
        Extension(
            "repro.sat._ckernel",
            sources=["src/repro/sat/_ckernel.c"],
            optional=True,
        )
    ],
)
